//! Dense per-country numeric vectors.
//!
//! Nearly every quantity in the study — view counts, traffic shares,
//! Map-Chart intensities, cache hit counters — is "one `f64` per
//! country". [`CountryVec`] stores them densely, indexed by
//! [`CountryId`], and provides the element-wise arithmetic the
//! reconstruction pipeline needs.

use core::fmt;
use core::ops::{Add, AddAssign, Index, IndexMut, Mul};

use crate::country::CountryId;
use crate::error::GeoError;

/// A dense vector of one `f64` value per country.
///
/// The vector's length is fixed at construction (normally
/// [`World::len`](crate::World::len)) and all arithmetic requires equal
/// lengths. Values are arbitrary finite floats; see
/// [`GeoDist`](crate::GeoDist) for the normalized-probability variant.
///
/// # Example
///
/// ```
/// use tagdist_geo::{world, CountryVec};
///
/// let mut views = CountryVec::zeros(world().len());
/// let fr = world().by_code("FR").unwrap().id;
/// views[fr] += 42.0;
/// assert_eq!(views.sum(), 42.0);
/// assert_eq!(views.argmax(), Some(fr));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CountryVec {
    values: Vec<f64>,
}

impl CountryVec {
    /// Creates a vector of `len` zeros.
    pub fn zeros(len: usize) -> CountryVec {
        CountryVec {
            values: vec![0.0; len],
        }
    }

    /// Creates a vector where every entry is `value`.
    pub fn filled(len: usize, value: f64) -> CountryVec {
        CountryVec {
            values: vec![value; len],
        }
    }

    /// Creates a vector from raw values.
    pub fn from_values(values: Vec<f64>) -> CountryVec {
        CountryVec { values }
    }

    /// Builds a vector of `len` zeros and sets the given
    /// `(country, value)` pairs.
    ///
    /// Later pairs overwrite earlier ones for the same country.
    ///
    /// # Panics
    ///
    /// Panics if a pair addresses an index `>= len`.
    pub fn from_pairs<I>(len: usize, pairs: I) -> CountryVec
    where
        I: IntoIterator<Item = (CountryId, f64)>,
    {
        let mut v = CountryVec::zeros(len);
        for (id, value) in pairs {
            v[id] = value;
        }
        v
    }

    /// Number of countries covered by the vector.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the vector covers no countries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Read-only view of the raw values, in [`CountryId`] order.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Mutable view of the raw values, in [`CountryId`] order — the
    /// entry point for the element-wise [`kernel`](crate::kernel)
    /// functions.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the vector and returns the raw values.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Returns the value for `id`, or `None` if out of range.
    pub fn get(&self, id: CountryId) -> Option<f64> {
        self.values.get(id.index()).copied()
    }

    /// Iterates over `(CountryId, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (CountryId, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(|(i, &v)| (CountryId::from_index(i), v))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Largest entry value, or `None` for an empty vector.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(m) => Some(if v > m { v } else { m }),
        })
    }

    /// Country holding the largest entry (first one on ties), or
    /// `None` for an empty vector.
    pub fn argmax(&self) -> Option<CountryId> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in self.values.iter().enumerate() {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| CountryId::from_index(i))
    }

    /// The `k` countries with the largest values, descending, ties
    /// broken by id order.
    pub fn top_k(&self, k: usize) -> Vec<(CountryId, f64)> {
        let pairs: Vec<(CountryId, f64)> = self.iter().collect();
        crate::select::top_k_by(pairs, k, |a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)))
    }

    /// Number of entries that are exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.values
            .iter()
            .filter(|&&v| crate::float::approx_zero(v))
            .count()
    }

    /// Returns `true` if every entry is finite (no NaN/±∞).
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// Returns `true` if every entry is finite and `>= 0`.
    pub fn is_nonnegative(&self) -> bool {
        self.values.iter().all(|v| v.is_finite() && *v >= 0.0)
    }

    /// Overwrites every entry with `value` in place (buffer reuse:
    /// `fill(0.0)` resets an accumulator without reallocating).
    pub fn fill(&mut self, value: f64) {
        self.values.fill(value);
    }

    /// Multiplies every entry by `factor` in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> CountryVec {
        let mut out = self.clone();
        out.scale(factor);
        out
    }

    /// Element-wise product with another vector.
    ///
    /// This is the kernel of the paper's Eq. 1 inversion
    /// (`pop(v)[c] · p̂yt[c]`).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    pub fn hadamard(&self, other: &CountryVec) -> Result<CountryVec, GeoError> {
        self.check_len(other)?;
        Ok(CountryVec {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Element-wise quotient; entries where `other` is zero map to
    /// zero rather than infinity (a view in a country with no traffic
    /// estimate carries no usable signal).
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    pub fn hadamard_div(&self, other: &CountryVec) -> Result<CountryVec, GeoError> {
        self.check_len(other)?;
        Ok(CountryVec {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| {
                    if crate::float::approx_zero(*b) {
                        0.0
                    } else {
                        a / b
                    }
                })
                .collect(),
        })
    }

    /// Adds `other` into `self`.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    pub fn accumulate(&mut self, other: &CountryVec) -> Result<(), GeoError> {
        self.check_len(other)?;
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
        Ok(())
    }

    /// L1 distance `Σ|a−b|` between two equal-length vectors.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    pub fn l1_distance(&self, other: &CountryVec) -> Result<f64, GeoError> {
        self.check_len(other)?;
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .sum())
    }

    /// Cosine similarity in `[−1, 1]`; zero if either vector is all
    /// zeros.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the lengths differ.
    pub fn cosine_similarity(&self, other: &CountryVec) -> Result<f64, GeoError> {
        self.check_len(other)?;
        let dot = crate::kernel::dot(&self.values, &other.values);
        let na = crate::kernel::norm(&self.values);
        let nb = crate::kernel::norm(&other.values);
        if crate::float::approx_zero(na) || crate::float::approx_zero(nb) {
            return Ok(0.0);
        }
        Ok(dot / (na * nb))
    }

    fn check_len(&self, other: &CountryVec) -> Result<(), GeoError> {
        if self.len() == other.len() {
            Ok(())
        } else {
            Err(GeoError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            })
        }
    }
}

impl Index<CountryId> for CountryVec {
    type Output = f64;

    fn index(&self, id: CountryId) -> &f64 {
        &self.values[id.index()]
    }
}

impl IndexMut<CountryId> for CountryVec {
    fn index_mut(&mut self, id: CountryId) -> &mut f64 {
        &mut self.values[id.index()]
    }
}

impl Add<&CountryVec> for CountryVec {
    type Output = CountryVec;

    /// # Panics
    ///
    /// Panics if the lengths differ; use [`CountryVec::accumulate`] for
    /// a fallible variant.
    #[expect(
        clippy::expect_used,
        reason = "operator impls cannot return Result; the panic is documented"
    )]
    fn add(mut self, rhs: &CountryVec) -> CountryVec {
        self.accumulate(rhs)
            .expect("CountryVec length mismatch in +");
        self
    }
}

impl AddAssign<&CountryVec> for CountryVec {
    /// # Panics
    ///
    /// Panics if the lengths differ; use [`CountryVec::accumulate`] for
    /// a fallible variant.
    #[expect(
        clippy::expect_used,
        reason = "operator impls cannot return Result; the panic is documented"
    )]
    fn add_assign(&mut self, rhs: &CountryVec) {
        self.accumulate(rhs)
            .expect("CountryVec length mismatch in +=");
    }
}

impl Mul<f64> for CountryVec {
    type Output = CountryVec;

    fn mul(mut self, rhs: f64) -> CountryVec {
        self.scale(rhs);
        self
    }
}

impl FromIterator<f64> for CountryVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> CountryVec {
        CountryVec {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for CountryVec {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl fmt::Display for CountryVec {
    /// Compact display: `[v0, v1, …]` with three decimals.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.3}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::world;

    fn id(i: usize) -> CountryId {
        CountryId::from_index(i)
    }

    #[test]
    fn zeros_and_filled() {
        let z = CountryVec::zeros(5);
        assert_eq!(z.sum(), 0.0);
        assert_eq!(z.count_zeros(), 5);
        let f = CountryVec::filled(4, 2.5);
        assert_eq!(f.sum(), 10.0);
    }

    #[test]
    fn from_pairs_overwrites() {
        let v = CountryVec::from_pairs(3, [(id(1), 2.0), (id(1), 5.0)]);
        assert_eq!(v[id(1)], 5.0);
        assert_eq!(v.sum(), 5.0);
    }

    #[test]
    fn index_and_get() {
        let mut v = CountryVec::zeros(world().len());
        let us = world().by_code("US").unwrap().id;
        v[us] = 7.0;
        assert_eq!(v.get(us), Some(7.0));
        assert_eq!(v.get(CountryId::from_index(999)), None);
    }

    #[test]
    fn argmax_prefers_first_on_ties() {
        let v = CountryVec::from_values(vec![1.0, 3.0, 3.0]);
        assert_eq!(v.argmax(), Some(id(1)));
        assert_eq!(CountryVec::zeros(0).argmax(), None);
    }

    #[test]
    fn top_k_sorts_descending() {
        let v = CountryVec::from_values(vec![0.5, 2.0, 1.0, 2.0]);
        let top = v.top_k(3);
        assert_eq!(top[0], (id(1), 2.0));
        assert_eq!(top[1], (id(3), 2.0));
        assert_eq!(top[2], (id(2), 1.0));
    }

    #[test]
    fn hadamard_multiplies_elementwise() {
        let a = CountryVec::from_values(vec![1.0, 2.0, 3.0]);
        let b = CountryVec::from_values(vec![4.0, 0.5, 0.0]);
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h.as_slice(), &[4.0, 1.0, 0.0]);
    }

    #[test]
    fn hadamard_div_maps_zero_denominator_to_zero() {
        let a = CountryVec::from_values(vec![1.0, 2.0]);
        let b = CountryVec::from_values(vec![0.0, 4.0]);
        let q = a.hadamard_div(&b).unwrap();
        assert_eq!(q.as_slice(), &[0.0, 0.5]);
    }

    #[test]
    fn length_mismatch_is_an_error() {
        let a = CountryVec::zeros(2);
        let b = CountryVec::zeros(3);
        assert!(matches!(
            a.hadamard(&b),
            Err(GeoError::LengthMismatch { left: 2, right: 3 })
        ));
        assert!(a.l1_distance(&b).is_err());
        assert!(a.cosine_similarity(&b).is_err());
    }

    #[test]
    fn accumulate_and_operators() {
        let mut a = CountryVec::from_values(vec![1.0, 2.0]);
        let b = CountryVec::from_values(vec![3.0, 4.0]);
        a += &b;
        assert_eq!(a.as_slice(), &[4.0, 6.0]);
        let c = a.clone() + &b;
        assert_eq!(c.as_slice(), &[7.0, 10.0]);
        let d = c * 0.5;
        assert_eq!(d.as_slice(), &[3.5, 5.0]);
    }

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let a = CountryVec::from_values(vec![1.0, 2.0, 3.0]);
        let cs = a.cosine_similarity(&a).unwrap();
        assert!((cs - 1.0).abs() < 1e-12);
        let zero = CountryVec::zeros(3);
        assert_eq!(a.cosine_similarity(&zero).unwrap(), 0.0);
    }

    #[test]
    fn l1_distance_matches_hand_computation() {
        let a = CountryVec::from_values(vec![1.0, 5.0]);
        let b = CountryVec::from_values(vec![4.0, 1.0]);
        assert_eq!(a.l1_distance(&b).unwrap(), 7.0);
    }

    #[test]
    fn validity_predicates() {
        let good = CountryVec::from_values(vec![0.0, 1.0]);
        assert!(good.is_finite() && good.is_nonnegative());
        let neg = CountryVec::from_values(vec![-1.0]);
        assert!(neg.is_finite() && !neg.is_nonnegative());
        let nan = CountryVec::from_values(vec![f64::NAN]);
        assert!(!nan.is_finite() && !nan.is_nonnegative());
    }

    #[test]
    fn fill_resets_in_place() {
        let mut v = CountryVec::from_values(vec![1.0, 2.0, 3.0]);
        v.fill(0.0);
        assert_eq!(v.as_slice(), &[0.0, 0.0, 0.0]);
        v.fill(2.5);
        assert_eq!(v.sum(), 7.5);
    }

    #[test]
    fn collect_and_display() {
        let v: CountryVec = [1.0, 2.0].into_iter().collect();
        assert_eq!(v.to_string(), "[1.000, 2.000]");
    }
}
