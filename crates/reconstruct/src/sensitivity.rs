//! Error-source decomposition for the Eq. 1 inversion.
//!
//! The pipeline loses information in two independent places:
//!
//! * **quantization** — the Map-Chart service rescales each video's
//!   intensity to `[0, 61]` and rounds (Fig. 1's saturation ties), and
//! * **prior mismatch** — Eq. 2 substitutes an estimate `p̂yt` for the
//!   true per-country traffic `pyt`.
//!
//! Given ground-truth view vectors, [`Sensitivity::analyze`] measures
//! each loss in isolation and combined, answering a question the paper
//! leaves open: *which* approximation dominates the reconstruction
//! error?

use tagdist_geo::{approx_zero, kernel, CountryMatrix, CountryVec, GeoDist, GeoError};
use tagdist_par::Pool;

use crate::error::ErrorReport;
use crate::views::reconstruct_views;

/// Decomposed reconstruction error over a ground-truth corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivity {
    /// Error with quantized charts but the *true* traffic prior:
    /// quantization loss only.
    pub quantization_only: ErrorReport,
    /// Error with infinite-precision charts but the *estimated*
    /// prior: prior-mismatch loss only.
    pub prior_only: ErrorReport,
    /// Error with both losses — what the paper's pipeline actually
    /// experiences.
    pub combined: ErrorReport,
    /// JS divergence (bits) between the true traffic and the
    /// estimated prior, for reference.
    pub prior_gap: f64,
}

impl Sensitivity {
    /// Analyzes a corpus of true per-country view vectors (one matrix
    /// row per video) under the estimated prior `est_traffic`.
    ///
    /// The true traffic is derived internally as the normalized sum of
    /// the `truth_views` rows (exactly how the synthetic platform
    /// defines `ytube` in Eq. 1).
    ///
    /// # Errors
    ///
    /// * [`GeoError::ZeroMass`] if `truth_views` has no rows, carries
    ///   no views, or contains an all-zero video.
    /// * [`GeoError::LengthMismatch`] if `est_traffic` disagrees on
    ///   the world size.
    pub fn analyze(
        truth_views: &CountryMatrix,
        est_traffic: &GeoDist,
    ) -> Result<Sensitivity, GeoError> {
        if truth_views.is_empty() {
            return Err(GeoError::ZeroMass);
        }
        // True platform traffic: ytube[c] = Σ_v views(v)[c].
        let ytube = truth_views.column_sums();
        let true_traffic = GeoDist::from_counts(&ytube)?;
        let prior_gap = true_traffic.js_divergence(est_traffic)?;

        // The per-video decompositions are independent: fan out over
        // the worker pool, results back in corpus order (any error
        // surfaces as the first failing video, as in the serial loop).
        let rows: Vec<&[f64]> = truth_views.iter_rows().collect();
        let per_video = Pool::from_env()
            .par_map(&rows, |_, views| -> Result<_, GeoError> {
                let total = kernel::sum(views).round().max(1.0) as u64;
                let truth = GeoDist::from_slice(views)?;

                // Eq. 1 forward model (hadamard_div semantics: a zero
                // traffic denominator yields zero intensity).
                let intensity: CountryVec = views
                    .iter()
                    .zip(ytube.as_slice())
                    .map(|(&v, &y)| if approx_zero(y) { 0.0 } else { v / y })
                    .collect();
                let chart = tagdist_geo::PopularityVector::quantize(&intensity)?;

                // (a) quantized chart + true prior.
                let v = reconstruct_views(&chart, total, &true_traffic)?;
                let quant = GeoDist::from_counts(&v)?;

                // (b) infinite-precision chart + estimated prior:
                //     views_est ∝ intensity · p̂yt.
                let est = intensity.hadamard(est_traffic.as_vec())?;
                let prior = GeoDist::from_counts(&est)?;

                // (c) both losses (the paper's pipeline).
                let v = reconstruct_views(&chart, total, est_traffic)?;
                let comb = GeoDist::from_counts(&v)?;
                Ok((truth, quant, prior, comb))
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()?;

        let mut truth_dists = Vec::with_capacity(per_video.len());
        let mut quant_only = Vec::with_capacity(per_video.len());
        let mut prior_only = Vec::with_capacity(per_video.len());
        let mut combined = Vec::with_capacity(per_video.len());
        for (truth, quant, prior, comb) in per_video {
            truth_dists.push(truth);
            quant_only.push(quant);
            prior_only.push(prior);
            combined.push(comb);
        }

        Ok(Sensitivity {
            quantization_only: ErrorReport::compare(&truth_dists, &quant_only)?,
            prior_only: ErrorReport::compare(&truth_dists, &prior_only)?,
            combined: ErrorReport::compare(&truth_dists, &combined)?,
            prior_gap,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A corpus of `n` random view rows over `k` countries.
    fn corpus(n: usize, k: usize, seed: u64) -> CountryMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = CountryMatrix::zeros(n, k);
        for i in 0..n {
            let scale: f64 = 10f64.powf(rng.gen_range(2.0..6.0));
            for slot in m.row_mut(i) {
                *slot = rng.gen::<f64>().powi(3) * scale;
            }
        }
        m
    }

    fn true_traffic(views: &CountryMatrix) -> GeoDist {
        GeoDist::from_counts(&views.column_sums()).unwrap()
    }

    #[test]
    fn exact_prior_and_no_quantization_would_be_lossless() {
        let views = corpus(50, 12, 1);
        let traffic = true_traffic(&views);
        let s = Sensitivity::analyze(&views, &traffic).unwrap();
        // With the true prior, prior_only error is exactly zero
        // (intensity·pyt ∝ views).
        assert!(
            s.prior_only.js.max < 1e-9,
            "prior-only {}",
            s.prior_only.js.max
        );
        assert!(s.prior_gap < 1e-12);
        // Quantization-only error is small but non-zero.
        assert!(s.quantization_only.js.mean > 0.0);
        assert!(s.quantization_only.js.mean < 0.1);
    }

    #[test]
    fn combined_error_is_at_least_each_component_roughly() {
        let views = corpus(80, 12, 2);
        let traffic = true_traffic(&views);
        // Perturb the prior by hand.
        let mut rng = StdRng::seed_from_u64(3);
        let noisy: CountryVec = traffic
            .as_vec()
            .as_slice()
            .iter()
            .map(|&p| p * (0.7 + 0.6 * rng.gen::<f64>()))
            .collect();
        let noisy = GeoDist::from_counts(&noisy).unwrap();
        let s = Sensitivity::analyze(&views, &noisy).unwrap();
        assert!(s.prior_gap > 0.0);
        assert!(s.prior_only.js.mean > 0.0);
        assert!(s.combined.js.mean >= 0.8 * s.quantization_only.js.mean);
        assert!(s.combined.js.mean >= 0.8 * s.prior_only.js.mean);
    }

    #[test]
    fn worse_priors_increase_prior_only_error() {
        let views = corpus(60, 12, 4);
        let traffic = true_traffic(&views);
        let perturb = |noise: f64| -> GeoDist {
            let mut rng = StdRng::seed_from_u64(9);
            let v: CountryVec = traffic
                .as_vec()
                .as_slice()
                .iter()
                .map(|&p| p * (1.0 + noise * (rng.gen::<f64>() * 2.0 - 1.0)))
                .collect();
            GeoDist::from_counts(&v).unwrap()
        };
        let small = Sensitivity::analyze(&views, &perturb(0.1)).unwrap();
        let large = Sensitivity::analyze(&views, &perturb(0.6)).unwrap();
        assert!(large.prior_only.js.mean > small.prior_only.js.mean);
        assert!(large.prior_gap > small.prior_gap);
    }

    #[test]
    fn empty_corpus_is_rejected() {
        let traffic = GeoDist::uniform(3);
        assert_eq!(
            Sensitivity::analyze(&CountryMatrix::zeros(0, 3), &traffic),
            Err(GeoError::ZeroMass)
        );
    }

    #[test]
    fn mismatched_world_sizes_error() {
        let views = corpus(5, 12, 5);
        let traffic = GeoDist::uniform(7);
        assert!(matches!(
            Sensitivity::analyze(&views, &traffic),
            Err(GeoError::LengthMismatch { .. })
        ));
    }
}
