//! Iterative refinement of the traffic prior.
//!
//! Eq. 2 needs an external estimate `p̂yt` of the per-country traffic
//! because `ytube[c]` is unobservable. But the reconstruction itself
//! *implies* a traffic distribution — the normalized sum of all
//! reconstructed view vectors — which suggests a fixed-point scheme
//! the paper never explores:
//!
//! ```text
//! p₀ = any prior (even uniform)
//! pₖ₊₁ = normalize( Σ_v reconstruct(pop(v), views(v), pₖ) )
//! ```
//!
//! Each iteration re-weights the charts by the implied traffic. The
//! iteration contracts quickly, and from an ignorant (uniform) start
//! it closes roughly half the gap to the true distribution — but the
//! fixed point is *biased*: the 0–61 quantization truncates small
//! intensities to zero and saturates the head, so the implied traffic
//! systematically under-weights small countries. The practical
//! reading (experiment E5c): bootstrap when no external prior exists,
//! but a decent external estimate (the paper's Alexa) still beats the
//! fixed point.

use tagdist_dataset::CleanDataset;
use tagdist_geo::{GeoDist, GeoError};

use crate::views::Reconstruction;

/// Outcome of the fixed-point refinement.
#[derive(Debug, Clone)]
pub struct RefinedPrior {
    /// The refined traffic distribution.
    pub traffic: GeoDist,
    /// Total-variation step sizes per iteration (`tv[i]` = distance
    /// between iterate `i` and `i+1`); a rapidly shrinking sequence
    /// indicates convergence.
    pub steps: Vec<f64>,
    /// The reconstruction under the final prior.
    pub reconstruction: Reconstruction,
}

impl RefinedPrior {
    /// Number of iterations performed.
    pub fn iterations(&self) -> usize {
        self.steps.len()
    }

    /// Whether the last step was below `epsilon` (the iteration
    /// stopped because it converged rather than hitting the cap).
    pub fn converged(&self, epsilon: f64) -> bool {
        self.steps.last().is_some_and(|&s| s < epsilon)
    }
}

/// Runs the fixed-point refinement from `initial` until the
/// total-variation step falls below `epsilon` or `max_iterations` is
/// reached.
///
/// # Errors
///
/// Propagates reconstruction errors ([`GeoError::ZeroMass`] /
/// [`GeoError::LengthMismatch`]) — with a filtered dataset and a
/// strictly positive initial prior these cannot occur.
///
/// # Panics
///
/// Panics if `max_iterations` is zero or `epsilon` is negative.
pub fn refine_prior(
    clean: &CleanDataset,
    initial: &GeoDist,
    max_iterations: usize,
    epsilon: f64,
) -> Result<RefinedPrior, GeoError> {
    assert!(max_iterations > 0, "need at least one iteration");
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let mut current = initial.clone();
    let mut steps = Vec::new();
    let mut reconstruction = Reconstruction::compute(clean, &current)?;
    for _ in 0..max_iterations {
        let implied = reconstruction.implied_traffic();
        let next = GeoDist::from_counts(&implied)?;
        let step = current.total_variation(&next)?;
        steps.push(step);
        current = next;
        reconstruction = Reconstruction::compute(clean, &current)?;
        if step < epsilon {
            break;
        }
    }
    Ok(RefinedPrior {
        traffic: current,
        steps,
        reconstruction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist_geo::CountryVec;

    /// A corpus whose charts were rendered under a known traffic
    /// distribution, so the fixed point has a ground truth to find.
    fn corpus() -> (CleanDataset, GeoDist) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        use tagdist_geo::PopularityVector;

        let true_traffic =
            GeoDist::from_counts(&CountryVec::from_values(vec![5.0, 3.0, 1.5, 0.5])).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut ytube = CountryVec::zeros(4);
        let mut videos: Vec<CountryVec> = Vec::new();
        for _ in 0..400 {
            // Views: a random mixture leaning local.
            let mut v = CountryVec::zeros(4);
            let home = rng.gen_range(0..4);
            for c in 0..4 {
                let id = tagdist_geo::CountryId::from_index(c);
                let base = true_traffic.prob(id) * rng.gen::<f64>();
                v[id] = 1_000.0 * (base + if c == home { 2.0 } else { 0.0 });
            }
            ytube += &v;
            videos.push(v);
        }
        let mut b = DatasetBuilder::new(4);
        for (i, v) in videos.iter().enumerate() {
            let intensity = v.hadamard_div(&ytube).unwrap();
            let chart = PopularityVector::quantize(&intensity).unwrap();
            b.push_video(
                &format!("v{i}"),
                v.sum().round() as u64,
                &["t"],
                RawPopularity::decode(chart.as_slice().to_vec(), 4),
            );
        }
        let clean = filter(&b.build());
        let true_dist = GeoDist::from_counts(&ytube).unwrap();
        (clean, true_dist)
    }

    #[test]
    fn refinement_recovers_traffic_from_a_uniform_start() {
        let (clean, true_traffic) = corpus();
        let uniform = GeoDist::uniform(4);
        let before = uniform.total_variation(&true_traffic).unwrap();
        let refined = refine_prior(&clean, &uniform, 20, 1e-6).unwrap();
        let after = refined.traffic.total_variation(&true_traffic).unwrap();
        assert!(
            after < 0.4 * before,
            "refinement {after} should close most of the {before} gap"
        );
        assert!(refined.converged(1e-6), "steps: {:?}", refined.steps);
    }

    #[test]
    fn steps_shrink_monotonically_ish() {
        let (clean, _) = corpus();
        let refined = refine_prior(&clean, &GeoDist::uniform(4), 15, 0.0).unwrap();
        assert!(refined.iterations() >= 3);
        // First step is the largest; the tail decays.
        let first = refined.steps[0];
        let last = *refined.steps.last().unwrap();
        assert!(last < 0.1 * first, "steps: {:?}", refined.steps);
    }

    #[test]
    fn starting_at_the_fixed_point_stays_there() {
        let (clean, _) = corpus();
        let refined = refine_prior(&clean, &GeoDist::uniform(4), 30, 1e-9).unwrap();
        let again = refine_prior(&clean, &refined.traffic, 5, 1e-9).unwrap();
        assert!(
            again.steps[0] < 1e-6,
            "fixed point moved: {:?}",
            again.steps
        );
    }

    #[test]
    fn refinement_improves_reconstruction_quality_too() {
        // Better prior ⇒ better per-video reconstructions. Use JS of
        // the implied traffic as a proxy available without ytsim.
        let (clean, true_traffic) = corpus();
        let uniform = GeoDist::uniform(4);
        let rough = Reconstruction::compute(&clean, &uniform).unwrap();
        let rough_implied = GeoDist::from_counts(&rough.implied_traffic()).unwrap();
        let refined = refine_prior(&clean, &uniform, 20, 1e-6).unwrap();
        let refined_implied =
            GeoDist::from_counts(&refined.reconstruction.implied_traffic()).unwrap();
        let rough_err = rough_implied.js_divergence(&true_traffic).unwrap();
        let refined_err = refined_implied.js_divergence(&true_traffic).unwrap();
        assert!(refined_err < rough_err, "{refined_err} vs {rough_err}");
    }

    #[test]
    fn empty_dataset_errors_cleanly() {
        let clean = filter(&DatasetBuilder::new(2).build());
        let err = refine_prior(&clean, &GeoDist::uniform(2), 5, 1e-6);
        assert!(matches!(err, Err(GeoError::ZeroMass)));
    }

    #[test]
    #[should_panic(expected = "iteration")]
    fn zero_iterations_panics() {
        let (clean, _) = corpus();
        let _ = refine_prior(&clean, &GeoDist::uniform(4), 0, 1e-6);
    }
}
