//! Streaming-ingest engine: per-batch deltas to the reconstruction
//! matrix and tag aggregates, with epoch-versioned snapshots.
//!
//! [`IngestEngine`] sits on top of
//! [`CleanIngest`](tagdist_dataset::CleanIngest): each applied batch
//! extends the clean columns, reconstructs the new videos' per-country
//! view rows, and folds them into per-tag aggregate rows — so after N
//! batches the engine holds exactly the state a cold
//! `filter → compute → aggregate` rebuild of the concatenated corpus
//! would, bit for bit (the PR 9 rebuild oracle).
//!
//! # Why incremental equals cold, bitwise
//!
//! * **Reconstruction rows** are per-video pure functions
//!   ([`reconstruct_intensities_into`]): appending each new video's row
//!   runs the identical arithmetic [`Reconstruction::compute`] runs for
//!   that row, independent of every other video.
//! * **Aggregate rows** are dataset-order f64 sums. The cold
//!   [`TagViewTable::aggregate`] sums each tag's postings in ascending
//!   clean-position order; new videos arrive in exactly that order, so
//!   folding a new row into its tags' aggregates *appends to each
//!   tag's addition sequence* — float addition is not associative or
//!   commutative here, but a prefix-extended left fold replays the
//!   same operation sequence, hence the same bits.
//! * **Merge order is deterministic by construction**: batches apply
//!   sequentially, videos within a batch in dataset order, tags within
//!   a video in record order. No thread count anywhere in the delta
//!   path can reorder an addition.
//!
//! Aggregates live in *first-populated* slot order while streaming
//! (tags appear as their first carrier arrives); publishing a snapshot
//! reorders the slot rows into the [`TagId`]-ordered compact matrix
//! [`TagViewTable`] expects. Reordering copies f64 values — copies
//! preserve bits.
//!
//! # Epochs and double-buffering
//!
//! [`publish`](IngestEngine::publish) finalizes the current state into
//! an immutable [`EpochSnapshot`] behind an `Arc` and flips it into the
//! engine's [`SnapshotCell`]. Readers (`report`/`stats`/`predict`
//! paths) [`load`](SnapshotCell::load) the cell and keep their `Arc`
//! for as long as they need a consistent view — the previous epoch
//! stays alive in their hands while the engine builds and flips the
//! next one, which is all a double buffer is. No reader ever observes
//! a half-applied batch.

use std::sync::{Arc, Mutex, PoisonError};

use tagdist_dataset::{CleanDataset, CleanIngest, Dataset, IngestDelta, TagId};
use tagdist_geo::{kernel, CountryMatrix, GeoDist, GeoError};
use tagdist_obs::SpanGuard;

use crate::tagviews::{TagViewTable, NO_ROW};
use crate::views::{reconstruct_intensities_into, Reconstruction};

/// Slot sentinel: the tag has not acquired a carrier yet.
const NO_SLOT: u32 = u32::MAX;

/// One immutable, internally consistent view of the stream: the clean
/// dataset, its reconstruction and the per-tag aggregates as of a
/// published epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Monotone epoch counter (first publish = 1).
    pub epoch: u64,
    /// The §2-filtered working set at this epoch.
    pub clean: CleanDataset,
    /// Per-video reconstructed view rows, aligned with `clean`.
    pub recon: Reconstruction,
    /// Per-tag Eq. 3 aggregates over `recon`.
    pub table: TagViewTable,
}

impl EpochSnapshot {
    /// Cold-builds epoch `epoch` from an already filtered dataset:
    /// per-video reconstruction plus per-tag aggregation against
    /// `traffic`. External publishers — `tagdist serve --watch`
    /// re-sniffing a file another process keeps rewriting — use this to
    /// turn a freshly loaded corpus into a publishable snapshot; by the
    /// rebuild oracle it equals the streamed state bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates the first per-video reconstruction error in dataset
    /// order.
    pub fn rebuild(
        epoch: u64,
        clean: CleanDataset,
        traffic: &GeoDist,
    ) -> Result<EpochSnapshot, GeoError> {
        let recon = Reconstruction::compute(&clean, traffic)?;
        let table = TagViewTable::aggregate(&clean, &recon);
        Ok(EpochSnapshot {
            epoch,
            clean,
            recon,
            table,
        })
    }
}

/// The published-snapshot slot readers poll: one atomic flip per
/// epoch, previous epochs kept alive by the readers still holding
/// them.
#[derive(Debug, Default)]
pub struct SnapshotCell {
    inner: Mutex<Option<Arc<EpochSnapshot>>>,
}

impl SnapshotCell {
    /// Creates an empty cell (no epoch published yet).
    pub fn new() -> SnapshotCell {
        SnapshotCell::default()
    }

    /// The most recently published snapshot, if any. Cloning the `Arc`
    /// is the whole read path — the returned epoch stays consistent
    /// (and alive) however long the caller keeps it.
    pub fn load(&self) -> Option<Arc<EpochSnapshot>> {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Flips `snapshot` into the cell. [`IngestEngine::publish`] calls
    /// this on every epoch; external publishers (the serve layer's
    /// `--watch` reload path) call it directly with a snapshot built
    /// via [`EpochSnapshot::rebuild`]. Readers pinned to the previous
    /// epoch are unaffected — they keep their `Arc`.
    pub fn store(&self, snapshot: Arc<EpochSnapshot>) {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = Some(snapshot);
    }
}

/// Deterministic counters of everything an engine has absorbed, for
/// the `ingest.*` obs section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestStats {
    /// Batches applied.
    pub batches: u64,
    /// Unique records seen across all batches.
    pub videos_seen: u64,
    /// Records skipped as duplicate keys.
    pub duplicates: u64,
    /// Videos retained by the filter.
    pub videos_kept: u64,
    /// Aggregate-row updates: one per (kept video, tag) pair.
    pub rows_touched: u64,
    /// Epochs published.
    pub epoch_flips: u64,
}

/// The streaming-ingest engine: applies video batches as deltas and
/// publishes epoch snapshots (see the module docs).
#[derive(Debug)]
pub struct IngestEngine {
    clean: CleanIngest,
    traffic: GeoDist,
    /// Flat `kept × countries` reconstruction rows, appended per video.
    recon: Vec<f64>,
    /// Indexed by [`TagId`]: the tag's aggregate slot, or [`NO_SLOT`].
    slot_of: Vec<u32>,
    /// Slot → tag, in first-populated order (NOT `TagId` order — the
    /// publish step reorders).
    slot_tags: Vec<TagId>,
    /// Flat `slots × countries` aggregate rows.
    agg: Vec<f64>,
    /// Indexed by [`TagId`]: retained carriers so far.
    video_counts: Vec<u32>,
    stats: IngestStats,
    epoch: u64,
    published: Arc<SnapshotCell>,
}

impl IngestEngine {
    /// Creates an empty engine reconstructing against `traffic`.
    pub fn new(traffic: GeoDist) -> IngestEngine {
        IngestEngine {
            clean: CleanIngest::new(traffic.len()),
            traffic,
            recon: Vec::new(),
            slot_of: Vec::new(),
            slot_tags: Vec::new(),
            agg: Vec::new(),
            video_counts: Vec::new(),
            stats: IngestStats::default(),
            epoch: 0,
            published: Arc::new(SnapshotCell::new()),
        }
    }

    /// Applies a whole dataset as one batch; see
    /// [`apply_from`](IngestEngine::apply_from).
    ///
    /// # Errors
    ///
    /// As for [`apply_from`](IngestEngine::apply_from).
    ///
    /// # Panics
    ///
    /// Panics if `batch` covers a different world size.
    pub fn apply(&mut self, batch: &Dataset) -> Result<IngestDelta, GeoError> {
        self.apply_from(batch, 0)
    }

    /// Applies the records of `dataset` from position `from` onward as
    /// one batch: filters them into the clean columns, reconstructs
    /// each new kept video's view row, and folds it into its tags'
    /// aggregate rows.
    ///
    /// # Errors
    ///
    /// Propagates the first per-video reconstruction error in dataset
    /// order ([`GeoError::ZeroMass`] is impossible for filtered videos
    /// under a strictly positive prior; [`GeoError::LengthMismatch`]
    /// cannot occur since batch and prior world sizes are checked).
    /// After an error the engine state is partially updated and must be
    /// discarded.
    ///
    /// # Panics
    ///
    /// Panics if `dataset` covers a different world size.
    pub fn apply_from(&mut self, dataset: &Dataset, from: usize) -> Result<IngestDelta, GeoError> {
        self.apply_range(dataset, from, dataset.len())
    }

    /// Applies the records `from..to` of `dataset` as one batch — the
    /// slicing that re-streams a saved crawl in fixed-size batches
    /// (`tagdist ingest --batches N`).
    ///
    /// # Errors
    ///
    /// As for [`apply_from`](IngestEngine::apply_from).
    ///
    /// # Panics
    ///
    /// Panics if `dataset` covers a different world size or the range
    /// is out of bounds.
    pub fn apply_range(
        &mut self,
        dataset: &Dataset,
        from: usize,
        to: usize,
    ) -> Result<IngestDelta, GeoError> {
        let delta = self.clean.apply_range(dataset, from, to);
        let cc = self.traffic.len();
        // Grow the vocabulary-wide spines to cover tags this batch
        // interned (carriers or not — matching the cold table's
        // full-width `row_of`).
        self.slot_of.resize(self.clean.tag_count(), NO_SLOT);
        self.video_counts.resize(self.clean.tag_count(), 0);
        for pos in delta.first_kept..delta.first_kept + delta.kept {
            // Reconstruct the new video's row, appended to the flat
            // matrix — per-row arithmetic identical to the cold
            // `Reconstruction::compute`.
            let row = pos * cc;
            self.recon.resize(row + cc, 0.0);
            reconstruct_intensities_into(
                self.clean.intensities_at(pos),
                self.clean.views_at(pos),
                &self.traffic,
                &mut self.recon[row..row + cc],
            )?;
            // Fold it into each carried tag's aggregate: positions
            // arrive ascending, so this extends every tag's
            // dataset-order addition sequence exactly as the cold
            // aggregation replays it.
            for &tag in self.clean.tags_at(pos) {
                let t = tag.index();
                if self.slot_of[t] == NO_SLOT {
                    self.slot_of[t] = self.slot_tags.len() as u32;
                    self.slot_tags.push(tag);
                    self.agg.resize(self.agg.len() + cc, 0.0);
                }
                let slot = self.slot_of[t] as usize * cc;
                kernel::add_assign(&mut self.agg[slot..slot + cc], &self.recon[row..row + cc]);
                self.video_counts[t] += 1;
                self.stats.rows_touched += 1;
            }
        }
        self.stats.batches += 1;
        self.stats.videos_seen += delta.unique as u64;
        self.stats.duplicates += delta.duplicates as u64;
        self.stats.videos_kept += delta.kept as u64;
        Ok(delta)
    }

    /// Finalizes the current state into an [`EpochSnapshot`], flips it
    /// into the engine's [`SnapshotCell`] and returns it.
    ///
    /// The snapshot's `clean`/`recon`/`table` equal a cold
    /// `filter → compute → aggregate` of the concatenated corpus field
    /// for field: the clean columns replay the cold column writes, the
    /// reconstruction matrix is a bit-preserving copy of the appended
    /// rows, and the aggregate slots are reordered (copied) into the
    /// [`TagId`]-ordered compact matrix the cold table builds.
    ///
    /// # Errors
    ///
    /// Never fails in practice — the flat buffers match their declared
    /// shapes by construction — but matrix assembly is fallible, so the
    /// signature is honest.
    pub fn publish(&mut self) -> Result<Arc<EpochSnapshot>, GeoError> {
        let cc = self.traffic.len();
        let clean = self.clean.snapshot();
        let recon = Reconstruction::from_matrix(CountryMatrix::from_flat(
            self.clean.kept(),
            cc,
            self.recon.clone(),
        )?);

        // Reorder first-populated slots into the TagId-ordered compact
        // spine. `video_counts[t] > 0 ⟺ slot_of[t] != NO_SLOT`, and
        // f64 copies preserve bits.
        let tag_count = self.video_counts.len();
        let mut row_of = vec![NO_ROW; tag_count];
        let mut tag_of_row = Vec::new();
        let mut rows_data = Vec::with_capacity(self.agg.len());
        for (t, &slot) in self.slot_of.iter().enumerate() {
            if slot == NO_SLOT {
                continue;
            }
            row_of[t] = tag_of_row.len() as u32;
            tag_of_row.push(TagId::from_index(t));
            let s = slot as usize * cc;
            rows_data.extend_from_slice(&self.agg[s..s + cc]);
        }
        let rows = CountryMatrix::from_flat(tag_of_row.len(), cc, rows_data)?;
        let table =
            TagViewTable::from_parts(row_of, tag_of_row, rows, self.video_counts.clone(), cc);

        self.epoch += 1;
        self.stats.epoch_flips += 1;
        let snapshot = Arc::new(EpochSnapshot {
            epoch: self.epoch,
            clean,
            recon,
            table,
        });
        self.published.store(Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// The cell this engine publishes into; clone the `Arc` and hand
    /// it to readers on other threads.
    pub fn cell(&self) -> Arc<SnapshotCell> {
        Arc::clone(&self.published)
    }

    /// The incremental filtering state (report, counts, columns).
    pub fn clean(&self) -> &CleanIngest {
        &self.clean
    }

    /// The traffic prior rows are reconstructed against.
    pub fn traffic(&self) -> &GeoDist {
        &self.traffic
    }

    /// Epochs published so far (0 before the first
    /// [`publish`](IngestEngine::publish)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Deterministic ingest counters.
    pub fn stats(&self) -> IngestStats {
        self.stats
    }

    /// Records the engine's deterministic counters under an `ingest`
    /// child span of `parent` (`ingest.batches`, `.videos_seen`,
    /// `.duplicates`, `.videos_kept`, `.rows_touched`,
    /// `.epoch_flips`) — the gated smoke-subtree section. Counters are
    /// totals over the engine's lifetime and never depend on
    /// `TAGDIST_THREADS`: the delta path is sequential by design.
    pub fn record_obs(&self, parent: &SpanGuard) {
        let span = parent.child("ingest");
        let obs = span.recorder();
        obs.add("ingest.batches", self.stats.batches);
        obs.add("ingest.videos_seen", self.stats.videos_seen);
        obs.add("ingest.duplicates", self.stats.duplicates);
        obs.add("ingest.videos_kept", self.stats.videos_kept);
        obs.add("ingest.rows_touched", self.stats.rows_touched);
        obs.add("ingest.epoch_flips", self.stats.epoch_flips);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};

    /// Cold rebuild of the pipeline over one dataset.
    fn cold(d: &Dataset, traffic: &GeoDist) -> EpochSnapshot {
        let clean = filter(d);
        let recon = Reconstruction::compute(&clean, traffic).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        EpochSnapshot {
            epoch: 0,
            clean,
            recon,
            table,
        }
    }

    fn assert_equivalent(snapshot: &EpochSnapshot, rebuild: &EpochSnapshot) {
        assert_eq!(snapshot.clean, rebuild.clean);
        assert_eq!(snapshot.recon, rebuild.recon);
        assert_eq!(snapshot.table, rebuild.table);
    }

    fn corpus(n: usize) -> Dataset {
        let mut b = DatasetBuilder::new(3);
        for i in 0..n {
            let tags: Vec<String> = (0..i % 4).map(|t| format!("tag{}", (i + t) % 17)).collect();
            let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            let pop = match i % 6 {
                0 => RawPopularity::Missing,
                1 => RawPopularity::decode(vec![0, 0, 0], 3),
                _ => RawPopularity::decode(vec![(i % 61) as u8, ((i * 7) % 61) as u8, 30], 3),
            };
            b.push_video(&format!("v{i}"), (i * i % 99_991) as u64, &tag_refs, pop);
        }
        b.build()
    }

    fn traffic3() -> GeoDist {
        GeoDist::from_slice(&[5.0, 2.0, 1.0]).unwrap()
    }

    /// Splits `d` into contiguous slices applied via `apply_from` on
    /// growing prefixes (the shape a monotone crawl produces).
    fn ingest_in_batches(d: &Dataset, cuts: &[usize], traffic: &GeoDist) -> IngestEngine {
        let mut engine = IngestEngine::new(traffic.clone());
        let mut from = 0;
        for &to in cuts.iter().chain(std::iter::once(&d.len())) {
            assert!(to >= from && to <= d.len());
            // Rebuild the prefix dataset [0, to) the way a suspended
            // crawl's checkpoint holds it.
            let mut b = DatasetBuilder::new(d.country_count());
            for i in 0..to {
                let v = d.video(tagdist_dataset::VideoId::from_index(i));
                let names: Vec<&str> = v.tags.iter().map(|&t| d.tags().name(t)).collect();
                b.push_video_titled(&v.key, &v.title, v.total_views, &names, {
                    v.popularity.clone()
                });
            }
            let prefix = b.build();
            engine.apply_from(&prefix, from).unwrap();
            engine.publish().unwrap();
            from = to;
        }
        engine
    }

    #[test]
    fn single_batch_equals_cold_rebuild() {
        let d = corpus(150);
        let traffic = traffic3();
        let mut engine = IngestEngine::new(traffic.clone());
        engine.apply(&d).unwrap();
        let snapshot = engine.publish().unwrap();
        assert_equivalent(&snapshot, &cold(&d, &traffic));
        assert_eq!(snapshot.epoch, 1);
        assert_eq!(engine.epoch(), 1);
    }

    #[test]
    fn batch_splits_converge_to_the_same_snapshot() {
        let d = corpus(120);
        let traffic = traffic3();
        let rebuild = cold(&d, &traffic);
        let all_at_once = ingest_in_batches(&d, &[], &traffic);
        let in_threes = ingest_in_batches(&d, &[40, 80], &traffic);
        let one_by_one_cuts: Vec<usize> = (1..d.len()).collect();
        let one_by_one = ingest_in_batches(&d, &one_by_one_cuts, &traffic);
        for engine in [&all_at_once, &in_threes, &one_by_one] {
            let snapshot = engine.cell().load().unwrap();
            assert_equivalent(&snapshot, &rebuild);
        }
        assert_eq!(one_by_one.epoch(), d.len() as u64);
    }

    #[test]
    fn duplicate_batches_do_not_change_state() {
        let d = corpus(80);
        let traffic = traffic3();
        let mut engine = IngestEngine::new(traffic.clone());
        engine.apply(&d).unwrap();
        let first = engine.publish().unwrap();
        let delta = engine.apply(&d).unwrap();
        assert_eq!(delta.unique, 0);
        assert_eq!(delta.duplicates, d.len());
        let second = engine.publish().unwrap();
        assert_eq!(second.epoch, 2);
        assert_equivalent(&second, &first);
        assert_equivalent(&second, &cold(&d, &traffic));
        assert_eq!(engine.stats().duplicates, d.len() as u64);
    }

    #[test]
    fn readers_keep_their_epoch_while_the_next_is_built() {
        let d = corpus(100);
        let traffic = traffic3();
        let mut engine = IngestEngine::new(traffic);
        let cell = engine.cell();
        assert!(cell.load().is_none(), "nothing published yet");

        let mut b = DatasetBuilder::new(3);
        b.extend_from(&d);
        let half = {
            let mut hb = DatasetBuilder::new(3);
            for i in 0..50 {
                let v = d.video(tagdist_dataset::VideoId::from_index(i));
                let names: Vec<&str> = v.tags.iter().map(|&t| d.tags().name(t)).collect();
                hb.push_video_titled(&v.key, &v.title, v.total_views, &names, {
                    v.popularity.clone()
                });
            }
            hb.build()
        };
        engine.apply(&half).unwrap();
        engine.publish().unwrap();
        let held = cell.load().unwrap(); // reader pins epoch 1

        engine.apply_from(&d, 50).unwrap();
        engine.publish().unwrap();

        // The pinned snapshot is untouched by the flip; the cell hands
        // out the new epoch.
        assert_eq!(held.epoch, 1);
        assert_eq!(held.clean.report().crawled, 50);
        let fresh = cell.load().unwrap();
        assert_eq!(fresh.epoch, 2);
        assert_eq!(fresh.clean.report().crawled, 100);
    }

    #[test]
    fn filtered_only_batches_publish_cleanly() {
        // A batch whose every record is dropped — tags interned but no
        // carriers ("dangling tag references") — must round-trip
        // through the delta path and publish an empty-but-consistent
        // snapshot.
        let mut b = DatasetBuilder::new(3);
        b.push_video(
            "ghost1",
            10,
            &["phantom", "specter"],
            RawPopularity::Missing,
        );
        b.push_video("ghost2", 20, &[], RawPopularity::decode(vec![1, 2, 3], 3));
        b.push_video(
            "ghost3",
            30,
            &["phantom"],
            RawPopularity::decode(vec![0, 0, 0], 3),
        );
        let d = b.build();
        let traffic = traffic3();
        let mut engine = IngestEngine::new(traffic.clone());
        let delta = engine.apply(&d).unwrap();
        assert_eq!(delta.kept, 0);
        assert_eq!(delta.unique, 3);
        let snapshot = engine.publish().unwrap();
        assert!(snapshot.clean.is_empty());
        assert_eq!(snapshot.clean.tags().len(), 2);
        assert_eq!(snapshot.table.populated_tags(), 0);
        assert_equivalent(&snapshot, &cold(&d, &traffic));
    }

    #[test]
    fn empty_engine_publishes_an_empty_epoch() {
        let mut engine = IngestEngine::new(traffic3());
        let snapshot = engine.publish().unwrap();
        assert_eq!(snapshot.epoch, 1);
        assert!(snapshot.clean.is_empty());
        assert_eq!(snapshot.recon.len(), 0);
        assert_eq!(snapshot.table.populated_tags(), 0);
    }

    #[test]
    fn stats_account_for_everything_applied() {
        let d = corpus(60);
        let mut engine = IngestEngine::new(traffic3());
        engine.apply(&d).unwrap();
        engine.apply(&d).unwrap();
        engine.publish().unwrap();
        let s = engine.stats();
        assert_eq!(s.batches, 2);
        assert_eq!(s.videos_seen, 60);
        assert_eq!(s.duplicates, 60);
        assert_eq!(s.epoch_flips, 1);
        let kept: u64 = filter(&d).report().kept as u64;
        assert_eq!(s.videos_kept, kept);
        let postings: u64 = {
            let clean = filter(&d);
            (0..clean.len())
                .map(|p| clean.tags_of(p).len() as u64)
                .sum()
        };
        assert_eq!(s.rows_touched, postings);
    }

    #[test]
    fn obs_counters_mirror_stats() {
        let d = corpus(40);
        let recorder = tagdist_obs::Recorder::new();
        let span = recorder.span("test");
        let mut engine = IngestEngine::new(traffic3());
        engine.apply(&d).unwrap();
        engine.publish().unwrap();
        engine.record_obs(&span);
        drop(span);
        let report = recorder.finish();
        assert_eq!(report.counters.get("ingest.batches"), Some(&1));
        assert_eq!(report.counters.get("ingest.epoch_flips"), Some(&1));
        assert_eq!(
            report.counters.get("ingest.videos_kept").copied(),
            Some(engine.stats().videos_kept)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};

    fn build(specs: &[(u64, usize, Vec<u8>)]) -> Dataset {
        let mut b = DatasetBuilder::new(3);
        for (i, (views, tag_seed, raw)) in specs.iter().enumerate() {
            let tags: Vec<String> = (0..*tag_seed)
                .map(|t| format!("t{}", (i + t) % 7))
                .collect();
            let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            b.push_video(
                &format!("v{i}"),
                *views,
                &tag_refs,
                RawPopularity::decode(raw.clone(), 3),
            );
        }
        b.build()
    }

    proptest! {
        /// The tentpole oracle, randomized: any contiguous batch split
        /// (including size-1 and all-at-once extremes) and any repeat
        /// application of already-seen records converges to the same
        /// snapshot a cold rebuild produces.
        #[test]
        fn any_batch_split_equals_cold_rebuild(
            specs in proptest::collection::vec(
                (1u64..1_000_000, 0usize..4, proptest::collection::vec(0u8..=61, 3)),
                1..30
            ),
            cut_seed in 0usize..1_000,
            dup_seed in 0usize..2,
        ) {
            let d = build(&specs);
            let traffic = GeoDist::from_slice(&[4.0, 2.0, 1.0]).unwrap();
            let clean = filter(&d);
            let cold_recon = Reconstruction::compute(&clean, &traffic).unwrap();
            let cold_table = TagViewTable::aggregate(&clean, &cold_recon);

            let cut = cut_seed % (d.len() + 1);
            let mut engine = IngestEngine::new(traffic.clone());
            // First batch: records [0, cut) as their own dataset.
            let first = {
                let mut b = DatasetBuilder::new(3);
                for i in 0..cut {
                    let v = d.video(tagdist_dataset::VideoId::from_index(i));
                    let names: Vec<&str> =
                        v.tags.iter().map(|&t| d.tags().name(t)).collect();
                    b.push_video(&v.key, v.total_views, &names, v.popularity.clone());
                }
                b.build()
            };
            engine.apply(&first).unwrap();
            if dup_seed == 1 {
                engine.apply(&first).unwrap();
            }
            // Second batch: the whole dataset — [0, cut) dedupes away.
            engine.apply(&d).unwrap();
            let snapshot = engine.publish().unwrap();

            prop_assert_eq!(&snapshot.clean, &clean);
            prop_assert_eq!(&snapshot.recon, &cold_recon);
            prop_assert_eq!(&snapshot.table, &cold_table);
        }
    }
}
