//! Per-tag view aggregation (Eq. 3), stored columnar.
//!
//! `views(t)[c] = Σ_{v ∈ videos(t)} views(v)[c]` — the quantity behind
//! the paper's Figs. 2–3 and behind its proactive-caching conjecture.
//!
//! The folksonomy vocabulary is long-tailed: most interned tags carry
//! no retained video at all. [`TagViewTable`] therefore stores the
//! aggregates CSR-style — a full-width `row_of` spine maps every
//! [`TagId`] to a compact row of one contiguous
//! [`CountryMatrix`] holding only the tags
//! that actually carry views, in `TagId` order (DESIGN.md §9).

use tagdist_dataset::{CleanDataset, TagId};
use tagdist_geo::{kernel, top_k_by, CountryMatrix, GeoDist, GeoError};
use tagdist_obs::SpanGuard;
use tagdist_par::Pool;

use crate::views::Reconstruction;

/// Spine sentinel: the tag has no retained videos, hence no row.
pub(crate) const NO_ROW: u32 = u32::MAX;

/// Aggregated per-country views for every tag of a filtered dataset.
///
/// # Example
///
/// ```
/// use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};
/// use tagdist_geo::GeoDist;
/// use tagdist_reconstruct::{Reconstruction, TagViewTable};
///
/// # fn main() -> Result<(), tagdist_geo::GeoError> {
/// let mut b = DatasetBuilder::new(2);
/// b.push_video("a", 100, &["pop"], RawPopularity::decode(vec![61, 61], 2));
/// let clean = filter(&b.build());
/// let recon = Reconstruction::compute(&clean, &GeoDist::uniform(2))?;
/// let table = TagViewTable::aggregate(&clean, &recon);
/// let pop = clean.tags().id("pop").unwrap();
/// assert_eq!(table.total_views(pop), 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TagViewTable {
    /// Indexed by [`TagId`]: the tag's compact row index in `rows`,
    /// or [`NO_ROW`] for tags without retained videos.
    row_of: Vec<u32>,
    /// Compact row → [`TagId`], ascending (row `r` aggregates tag
    /// `tag_of_row[r]`).
    tag_of_row: Vec<TagId>,
    /// One contiguous `populated_tags × countries` matrix of Eq. 3
    /// aggregates, rows in [`TagId`] order.
    rows: CountryMatrix,
    /// Indexed by [`TagId`]: retained videos carrying the tag.
    video_counts: Vec<u32>,
    country_count: usize,
}

impl TagViewTable {
    /// Aggregates `recon` (aligned with `clean`) per tag.
    ///
    /// The clean dataset already inverted the corpus at construction:
    /// [`CleanDataset::videos_with_tag`] hands each tag's retained
    /// positions in dataset order, so aggregation reuses that CSR
    /// spine instead of re-counting and re-inverting (the two serial
    /// passes this stage used to pay). Rows then compute independently
    /// over the `TAGDIST_THREADS` worker pool, each row the
    /// dataset-order sum of its postings' reconstructed rows. Because
    /// a row's addition sequence is a pure function of the corpus — no
    /// shards, no merges — the table is bit-identical at any thread
    /// count *and* bit-identical to the serial boxed-row build it
    /// replaced (see the test-only [`reference`] oracle).
    ///
    /// # Panics
    ///
    /// Panics if `recon` was computed from a different dataset (length
    /// mismatch).
    pub fn aggregate(clean: &CleanDataset, recon: &Reconstruction) -> TagViewTable {
        TagViewTable::aggregate_with(&Pool::from_env(), clean, recon)
    }

    /// [`aggregate`](TagViewTable::aggregate), instrumented: opens an
    /// `aggregate` child span of `parent` and records the stage's
    /// deterministic counters (`aggregate.tags_total`,
    /// `.tags_populated`, `.postings`, `.cells`) plus pool dispatch
    /// stats into its recorder.
    ///
    /// # Panics
    ///
    /// As for [`aggregate`](TagViewTable::aggregate).
    pub fn aggregate_obs(
        clean: &CleanDataset,
        recon: &Reconstruction,
        parent: &SpanGuard,
    ) -> TagViewTable {
        let span = parent.child("aggregate");
        let obs = span.recorder().clone();
        let pool = Pool::from_env().with_obs(&obs);
        let table = TagViewTable::aggregate_with(&pool, clean, recon);
        obs.add("aggregate.tags_total", clean.tags().len() as u64);
        obs.add("aggregate.tags_populated", table.populated_tags() as u64);
        obs.add(
            "aggregate.postings",
            table.video_counts.iter().map(|&c| u64::from(c)).sum(),
        );
        obs.add(
            "aggregate.cells",
            (table.populated_tags() * table.country_count) as u64,
        );
        table
    }

    /// [`aggregate`](TagViewTable::aggregate) on an explicit pool.
    ///
    /// # Panics
    ///
    /// Panics if `recon` was computed from a different dataset (length
    /// mismatch).
    pub fn aggregate_with(
        pool: &Pool,
        clean: &CleanDataset,
        recon: &Reconstruction,
    ) -> TagViewTable {
        assert_eq!(
            clean.len(),
            recon.len(),
            "reconstruction does not match dataset"
        );
        let tag_count = clean.tags().len();
        let country_count = recon.country_count();

        // The clean dataset inverted the corpus at construction:
        // `videos_with_tag` is each tag's retained dataset positions,
        // in dataset order — the exact posting lists the two serial
        // count-and-invert passes here used to rebuild. Only the
        // compact row spine (populated tags in TagId order) remains to
        // derive.
        let mut video_counts = vec![0u32; tag_count];
        let mut row_of = vec![NO_ROW; tag_count];
        let mut tag_of_row = Vec::new();
        for index in 0..tag_count {
            let count = clean.videos_with_tag(TagId::from_index(index)).len();
            video_counts[index] = count as u32;
            if count > 0 {
                row_of[index] = tag_of_row.len() as u32;
                tag_of_row.push(TagId::from_index(index));
            }
        }
        let populated = tag_of_row.len();

        // Every compact row is the dataset-order sum of its postings'
        // reconstructed rows. Rows are independent, so they fan out
        // over the pool writing straight into the one contiguous
        // matrix; each row's addition sequence never depends on
        // scheduling, so the result is bit-identical at any thread
        // count — and to a serial video-order accumulation.
        let recon_matrix = recon.matrix();
        let mut rows = CountryMatrix::zeros(populated, country_count);
        let _: Vec<()> = pool.par_fill(
            &tag_of_row,
            rows.as_mut_slice(),
            country_count,
            |_start, chunk, block| {
                for (j, &tag) in chunk.iter().enumerate() {
                    let dst = &mut block[j * country_count..(j + 1) * country_count];
                    for &pos in clean.videos_with_tag(tag) {
                        kernel::add_assign(dst, recon_matrix.row(pos as usize));
                    }
                }
            },
        );

        TagViewTable {
            row_of,
            tag_of_row,
            rows,
            video_counts,
            country_count,
        }
    }

    /// Assembles a table from already-aggregated parts (the
    /// streaming-ingest engine's snapshot path). Invariants expected:
    /// `row_of` and `video_counts` are full-vocabulary spines,
    /// `tag_of_row` lists populated tags ascending, and `rows` holds
    /// their aggregates in the same order.
    pub(crate) fn from_parts(
        row_of: Vec<u32>,
        tag_of_row: Vec<TagId>,
        rows: CountryMatrix,
        video_counts: Vec<u32>,
        country_count: usize,
    ) -> TagViewTable {
        debug_assert_eq!(rows.rows(), tag_of_row.len());
        TagViewTable {
            row_of,
            tag_of_row,
            rows,
            video_counts,
            country_count,
        }
    }

    /// World size of every row.
    pub fn country_count(&self) -> usize {
        self.country_count
    }

    /// Number of tags with at least one retained video (the compact
    /// matrix's row count).
    pub fn populated_tags(&self) -> usize {
        self.tag_of_row.len()
    }

    /// The aggregated view vector `views(t)` as a borrowed matrix row,
    /// or `None` if the tag has no retained videos.
    pub fn views(&self, tag: TagId) -> Option<&[f64]> {
        let row = *self.row_of.get(tag.index())?;
        if row == NO_ROW {
            return None;
        }
        self.rows.get_row(row as usize)
    }

    /// The tag's geographic view *distribution*.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::ZeroMass`] if the tag has no retained
    /// videos (or, pathologically, zero aggregated views).
    pub fn distribution(&self, tag: TagId) -> Result<GeoDist, GeoError> {
        let row = self.views(tag).ok_or(GeoError::ZeroMass)?;
        GeoDist::from_slice(row)
    }

    /// Number of retained videos carrying `tag`.
    pub fn video_count(&self, tag: TagId) -> usize {
        self.video_counts.get(tag.index()).copied().unwrap_or(0) as usize
    }

    /// Total views aggregated under `tag` (0 for unused tags).
    pub fn total_views(&self, tag: TagId) -> f64 {
        self.views(tag).map(kernel::sum).unwrap_or(0.0)
    }

    /// Iterates `(TagId, views)` over populated tags in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &[f64])> + '_ {
        self.tag_of_row
            .iter()
            .zip(self.rows.iter_rows())
            .map(|(&tag, row)| (tag, row))
    }

    /// The `k` tags with the most aggregated views, descending — the
    /// ranking in which the paper calls `pop` "the second most viewed
    /// tag in our dataset".
    pub fn top_by_views(&self, k: usize) -> Vec<(TagId, f64)> {
        let all: Vec<(TagId, f64)> = self.iter().map(|(t, v)| (t, kernel::sum(v))).collect();
        top_k_by(all, k, |a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist_geo::GeoDist;

    fn setup() -> (CleanDataset, Reconstruction) {
        let mut b = DatasetBuilder::new(2);
        b.push_video(
            "a",
            1_000,
            &["pop", "music"],
            RawPopularity::decode(vec![61, 61], 2),
        );
        b.push_video("b", 100, &["pop"], RawPopularity::decode(vec![0, 61], 2));
        b.push_video("c", 10, &["lonely"], RawPopularity::decode(vec![61, 0], 2));
        let clean = filter(&b.build());
        let traffic = GeoDist::uniform(2);
        let recon = Reconstruction::compute(&clean, &traffic).unwrap();
        (clean, recon)
    }

    #[test]
    fn aggregation_implements_eq3() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let pop = clean.tags().id("pop").unwrap();
        // a: uniform traffic, equal intensity → 500/500; b: 0/100.
        let row = table.views(pop).unwrap().to_vec();
        assert!(
            (row[0] - 500.0).abs() < 1e-6 && (row[1] - 600.0).abs() < 1e-6,
            "{row:?}"
        );
        assert_eq!(table.video_count(pop), 2);
        assert_eq!(table.total_views(pop), 1_100.0);
    }

    #[test]
    fn unused_tags_have_no_rows() {
        let mut b = DatasetBuilder::new(2);
        b.push_video("a", 5, &["kept"], RawPopularity::decode(vec![61, 0], 2));
        b.push_video("dropped", 5, &["ghost"], RawPopularity::Missing);
        let clean = filter(&b.build());
        let recon = Reconstruction::compute(&clean, &GeoDist::uniform(2)).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        let ghost = clean.tags().id("ghost").unwrap();
        assert!(table.views(ghost).is_none());
        assert_eq!(table.video_count(ghost), 0);
        assert_eq!(table.total_views(ghost), 0.0);
        assert!(table.distribution(ghost).is_err());
        assert_eq!(table.populated_tags(), 1);
        // Out-of-interner ids are absent, not panics.
        assert!(table.views(TagId::from_index(9_999)).is_none());
    }

    #[test]
    fn distributions_normalize() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let pop = clean.tags().id("pop").unwrap();
        let d = table.distribution(pop).unwrap();
        assert!((d.prob(tagdist_geo::CountryId::from_index(1)) - 600.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn top_by_views_ranks_descending() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let top = table.top_by_views(10);
        assert_eq!(top.len(), 3); // pop, music, lonely
        assert_eq!(clean.tags().name(top[0].0), "pop");
        assert!((top[0].1 - 1_100.0).abs() < 1e-9);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(table.top_by_views(1).len(), 1);
    }

    #[test]
    fn iter_visits_populated_rows_in_order() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let ids: Vec<usize> = table.iter().map(|(t, _)| t.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(table.populated_tags(), 3);
        let _ = clean;
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_reconstruction_panics() {
        let (clean, _) = setup();
        let mut b = DatasetBuilder::new(2);
        b.push_video("z", 1, &["t"], RawPopularity::decode(vec![61, 0], 2));
        let other = filter(&b.build());
        let recon = Reconstruction::compute(&other, &GeoDist::uniform(2)).unwrap();
        let _ = TagViewTable::aggregate(&clean, &recon);
    }

    /// The determinism contract: sharded aggregation is bit-identical
    /// at any thread count, even though float addition is not
    /// associative — chunking and merge order ignore the worker count.
    #[test]
    fn aggregation_is_thread_count_invariant() {
        let (clean, recon) = reference::irregular_corpus(700);
        let reference = TagViewTable::aggregate_with(&tagdist_par::Pool::new(1), &clean, &recon);
        for threads in [2, 5, 8] {
            let parallel =
                TagViewTable::aggregate_with(&tagdist_par::Pool::new(threads), &clean, &recon);
            assert_eq!(reference, parallel, "diverged at {threads} threads");
        }
    }

    /// Eq. 3 conservation: every reconstructed view is counted once
    /// per carrying tag, so Σ_t views(t) = Σ_v |tags(v)|·views(v).
    #[test]
    fn mass_conservation_across_tags() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let total_tagged: f64 = table.iter().map(|(_, v)| kernel::sum(v)).sum();
        let expected: f64 = clean
            .iter()
            .map(|v| v.tags.len() as f64 * v.total_views as f64)
            .sum();
        assert!((total_tagged - expected).abs() < 1e-6);
    }
}

/// Test-only reference implementation: the pre-columnar boxed-row
/// build — a `Vec<Option<CountryVec>>` at full vocabulary width,
/// accumulated serially in dataset order — kept so proptests can
/// assert the CSR table matches it bit for bit.
#[cfg(test)]
pub(crate) mod reference {
    use tagdist_dataset::{filter, CleanDataset, DatasetBuilder, RawPopularity, TagId};
    use tagdist_geo::{CountryVec, GeoDist};

    use crate::views::Reconstruction;

    /// The PR 2 storage layout: per-tag boxed rows at full vocabulary
    /// width, lazily allocated on first touch.
    pub struct TagShard {
        pub rows: Vec<Option<CountryVec>>,
        pub video_counts: Vec<usize>,
    }

    impl TagShard {
        fn empty(tag_count: usize) -> TagShard {
            TagShard {
                rows: vec![None; tag_count],
                video_counts: vec![0; tag_count],
            }
        }

        fn add_video(&mut self, tags: &[TagId], views: &[f64], country_count: usize) {
            for &tag in tags {
                let row =
                    self.rows[tag.index()].get_or_insert_with(|| CountryVec::zeros(country_count));
                for (slot, &v) in row.as_mut_slice().iter_mut().zip(views) {
                    *slot += v;
                }
                self.video_counts[tag.index()] += 1;
            }
        }
    }

    /// The oracle build: one serial pass in dataset order. The
    /// columnar table's per-row posting lists replay exactly this
    /// addition sequence, so the two must agree bit for bit.
    pub fn aggregate(clean: &CleanDataset, recon: &Reconstruction) -> TagShard {
        assert_eq!(clean.len(), recon.len());
        let country_count = recon.country_count();
        let matrix = recon.matrix();
        let mut shard = TagShard::empty(clean.tags().len());
        for (pos, video) in clean.iter().enumerate() {
            shard.add_video(video.tags, matrix.row(pos), country_count);
        }
        shard
    }

    /// A corpus with irregular tag overlap and view counts across
    /// chunks, for determinism and equivalence tests.
    pub fn irregular_corpus(videos: usize) -> (CleanDataset, Reconstruction) {
        let mut b = DatasetBuilder::new(3);
        for i in 0..videos {
            let tags: Vec<String> = (0..=(i % 4))
                .map(|t| format!("tag{}", (i + t) % 37))
                .collect();
            let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            let raw = vec![(i % 61 + 1) as u8, ((i * 7) % 61) as u8, 30];
            b.push_video(&format!("v{i}"), 10 + (i * i % 9_999) as u64, &tag_refs, {
                RawPopularity::decode(raw, 3)
            });
        }
        let clean = filter(&b.build());
        let recon = Reconstruction::compute(&clean, &GeoDist::uniform(3)).unwrap();
        (clean, recon)
    }
}

#[cfg(test)]
mod reference_tests {
    use super::*;
    use tagdist_par::Pool;

    /// The satellite contract: the columnar CSR table must match the
    /// old boxed-row build **exactly** — values bit for bit, video
    /// counts, and missing-tag handling — at several thread counts.
    fn assert_matches_reference(clean: &tagdist_dataset::CleanDataset, recon: &Reconstruction) {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let columnar = TagViewTable::aggregate_with(&pool, clean, recon);
            let oracle = reference::aggregate(clean, recon);
            assert_eq!(columnar.row_of.len(), oracle.rows.len());
            let mut populated = 0;
            for (index, row) in oracle.rows.iter().enumerate() {
                let tag = TagId::from_index(index);
                match row {
                    Some(expected) => {
                        populated += 1;
                        assert_eq!(
                            columnar.views(tag),
                            Some(expected.as_slice()),
                            "tag {tag:?} at {threads} threads"
                        );
                    }
                    None => assert_eq!(columnar.views(tag), None, "tag {tag:?} should be absent"),
                }
                assert_eq!(columnar.video_count(tag), oracle.video_counts[index]);
            }
            assert_eq!(columnar.populated_tags(), populated);
        }
    }

    #[test]
    fn columnar_matches_reference_on_irregular_corpus() {
        let (clean, recon) = reference::irregular_corpus(700);
        assert_matches_reference(&clean, &recon);
    }

    #[test]
    fn columnar_matches_reference_on_empty_corpus() {
        let (clean, recon) = reference::irregular_corpus(0);
        assert_matches_reference(&clean, &recon);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist_par::Pool;

    proptest! {
        /// Random corpora, random thread counts: the CSR table and the
        /// old boxed-row reference agree exactly (values, counts,
        /// missing tags).
        #[test]
        fn columnar_equals_boxed_reference(
            specs in proptest::collection::vec(
                (1u64..1_000_000, 0usize..6, proptest::collection::vec(0u8..=61, 3)),
                0..40
            ),
            threads in 1usize..9
        ) {
            let mut b = DatasetBuilder::new(3);
            for (i, (views, tag_seed, raw)) in specs.iter().enumerate() {
                let tags: Vec<String> =
                    (0..=(tag_seed % 3)).map(|t| format!("t{}", (i + t) % 11)).collect();
                let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
                b.push_video(
                    &format!("v{i}"),
                    *views,
                    &tag_refs,
                    RawPopularity::decode(raw.clone(), 3),
                );
            }
            let clean = filter(&b.build());
            let recon = Reconstruction::compute(&clean, &tagdist_geo::GeoDist::uniform(3)).unwrap();
            let pool = Pool::new(threads);
            let columnar = TagViewTable::aggregate_with(&pool, &clean, &recon);
            let oracle = reference::aggregate(&clean, &recon);
            for (index, row) in oracle.rows.iter().enumerate() {
                let tag = tagdist_dataset::TagId::from_index(index);
                prop_assert_eq!(columnar.views(tag), row.as_ref().map(|r| r.as_slice()));
                prop_assert_eq!(columnar.video_count(tag), oracle.video_counts[index]);
            }
        }
    }
}
