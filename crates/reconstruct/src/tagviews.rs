//! Per-tag view aggregation (Eq. 3).
//!
//! `views(t)[c] = Σ_{v ∈ videos(t)} views(v)[c]` — the quantity behind
//! the paper's Figs. 2–3 and behind its proactive-caching conjecture.

use tagdist_dataset::{CleanDataset, TagId};
use tagdist_geo::{CountryVec, GeoDist, GeoError};
use tagdist_par::Pool;

use crate::views::Reconstruction;

/// One shard of the parallel Eq. 3 reduction: per-tag partial sums and
/// video counts for a contiguous chunk of the dataset. Preallocated at
/// full tag width so folding never reallocates the spine.
struct TagShard {
    rows: Vec<Option<CountryVec>>,
    video_counts: Vec<usize>,
}

impl TagShard {
    fn empty(tag_count: usize) -> TagShard {
        TagShard {
            rows: vec![None; tag_count],
            video_counts: vec![0; tag_count],
        }
    }

    /// Folds one video's reconstructed views into the shard.
    fn add_video(&mut self, tags: &[TagId], views: &CountryVec, country_count: usize) {
        for &tag in tags {
            let row =
                self.rows[tag.index()].get_or_insert_with(|| CountryVec::zeros(country_count));
            *row += views;
            self.video_counts[tag.index()] += 1;
        }
    }

    /// Merges `other` into `self`, tag by tag in [`TagId`] order.
    fn merge(mut self, other: TagShard) -> TagShard {
        for (slot, incoming) in self.rows.iter_mut().zip(other.rows) {
            if let Some(incoming) = incoming {
                match slot {
                    Some(row) => *row += &incoming,
                    None => *slot = Some(incoming),
                }
            }
        }
        for (count, incoming) in self.video_counts.iter_mut().zip(other.video_counts) {
            *count += incoming;
        }
        self
    }
}

/// Aggregated per-country views for every tag of a filtered dataset.
///
/// # Example
///
/// ```
/// use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};
/// use tagdist_geo::GeoDist;
/// use tagdist_reconstruct::{Reconstruction, TagViewTable};
///
/// # fn main() -> Result<(), tagdist_geo::GeoError> {
/// let mut b = DatasetBuilder::new(2);
/// b.push_video("a", 100, &["pop"], RawPopularity::decode(vec![61, 61], 2));
/// let clean = filter(&b.build());
/// let recon = Reconstruction::compute(&clean, &GeoDist::uniform(2))?;
/// let table = TagViewTable::aggregate(&clean, &recon);
/// let pop = clean.tags().id("pop").unwrap();
/// assert_eq!(table.total_views(pop), 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TagViewTable {
    /// Indexed by [`TagId`]; `None` for tags without retained videos.
    rows: Vec<Option<CountryVec>>,
    /// Number of retained videos carrying each tag.
    video_counts: Vec<usize>,
    country_count: usize,
}

impl TagViewTable {
    /// Aggregates `recon` (aligned with `clean`) per tag.
    ///
    /// The dataset is folded in chunks over the `TAGDIST_THREADS`
    /// worker pool into per-shard `Vec<Option<CountryVec>>`
    /// accumulators, merged deterministically in [`TagId`] order along
    /// a chunk-ordered tree — the result is bit-identical at any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `recon` was computed from a different dataset (length
    /// mismatch).
    pub fn aggregate(clean: &CleanDataset, recon: &Reconstruction) -> TagViewTable {
        TagViewTable::aggregate_with(&Pool::from_env(), clean, recon)
    }

    /// [`aggregate`](TagViewTable::aggregate) on an explicit pool.
    ///
    /// # Panics
    ///
    /// Panics if `recon` was computed from a different dataset (length
    /// mismatch).
    pub fn aggregate_with(
        pool: &Pool,
        clean: &CleanDataset,
        recon: &Reconstruction,
    ) -> TagViewTable {
        assert_eq!(
            clean.len(),
            recon.len(),
            "reconstruction does not match dataset"
        );
        let tag_count = clean.tags().len();
        let country_count = recon.country_count();
        let videos = clean.as_slice();
        let shard = pool.par_fold(
            recon.as_rows(),
            || TagShard::empty(tag_count),
            |mut shard, pos, views| {
                shard.add_video(&videos[pos].tags, views, country_count);
                shard
            },
            TagShard::merge,
        );
        TagViewTable {
            rows: shard.rows,
            video_counts: shard.video_counts,
            country_count,
        }
    }

    /// World size of every row.
    pub fn country_count(&self) -> usize {
        self.country_count
    }

    /// Number of tags with at least one retained video.
    pub fn populated_tags(&self) -> usize {
        self.rows.iter().filter(|r| r.is_some()).count()
    }

    /// The aggregated view vector `views(t)`, or `None` if the tag has
    /// no retained videos.
    pub fn views(&self, tag: TagId) -> Option<&CountryVec> {
        self.rows.get(tag.index()).and_then(Option::as_ref)
    }

    /// The tag's geographic view *distribution*.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::ZeroMass`] if the tag has no retained
    /// videos (or, pathologically, zero aggregated views).
    pub fn distribution(&self, tag: TagId) -> Result<GeoDist, GeoError> {
        let row = self.views(tag).ok_or(GeoError::ZeroMass)?;
        GeoDist::from_counts(row)
    }

    /// Number of retained videos carrying `tag`.
    pub fn video_count(&self, tag: TagId) -> usize {
        self.video_counts.get(tag.index()).copied().unwrap_or(0)
    }

    /// Total views aggregated under `tag` (0 for unused tags).
    pub fn total_views(&self, tag: TagId) -> f64 {
        self.views(tag).map(CountryVec::sum).unwrap_or(0.0)
    }

    /// Iterates `(TagId, views)` over populated tags in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, &CountryVec)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, row)| row.as_ref().map(|r| (TagId::from_index(i), r)))
    }

    /// The `k` tags with the most aggregated views, descending — the
    /// ranking in which the paper calls `pop` "the second most viewed
    /// tag in our dataset".
    pub fn top_by_views(&self, k: usize) -> Vec<(TagId, f64)> {
        let mut all: Vec<(TagId, f64)> = self.iter().map(|(t, v)| (t, v.sum())).collect();
        all.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(core::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};
    use tagdist_geo::GeoDist;

    fn setup() -> (CleanDataset, Reconstruction) {
        let mut b = DatasetBuilder::new(2);
        b.push_video(
            "a",
            1_000,
            &["pop", "music"],
            RawPopularity::decode(vec![61, 61], 2),
        );
        b.push_video("b", 100, &["pop"], RawPopularity::decode(vec![0, 61], 2));
        b.push_video("c", 10, &["lonely"], RawPopularity::decode(vec![61, 0], 2));
        let clean = filter(&b.build());
        let traffic = GeoDist::uniform(2);
        let recon = Reconstruction::compute(&clean, &traffic).unwrap();
        (clean, recon)
    }

    #[test]
    fn aggregation_implements_eq3() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let pop = clean.tags().id("pop").unwrap();
        // a: uniform traffic, equal intensity → 500/500; b: 0/100.
        let row = table.views(pop).unwrap().as_slice().to_vec();
        assert!(
            (row[0] - 500.0).abs() < 1e-6 && (row[1] - 600.0).abs() < 1e-6,
            "{row:?}"
        );
        assert_eq!(table.video_count(pop), 2);
        assert_eq!(table.total_views(pop), 1_100.0);
    }

    #[test]
    fn unused_tags_have_no_rows() {
        let mut b = DatasetBuilder::new(2);
        b.push_video("a", 5, &["kept"], RawPopularity::decode(vec![61, 0], 2));
        b.push_video("dropped", 5, &["ghost"], RawPopularity::Missing);
        let clean = filter(&b.build());
        let recon = Reconstruction::compute(&clean, &GeoDist::uniform(2)).unwrap();
        let table = TagViewTable::aggregate(&clean, &recon);
        let ghost = clean.tags().id("ghost").unwrap();
        assert!(table.views(ghost).is_none());
        assert_eq!(table.video_count(ghost), 0);
        assert_eq!(table.total_views(ghost), 0.0);
        assert!(table.distribution(ghost).is_err());
        assert_eq!(table.populated_tags(), 1);
    }

    #[test]
    fn distributions_normalize() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let pop = clean.tags().id("pop").unwrap();
        let d = table.distribution(pop).unwrap();
        assert!((d.prob(tagdist_geo::CountryId::from_index(1)) - 600.0 / 1100.0).abs() < 1e-12);
    }

    #[test]
    fn top_by_views_ranks_descending() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let top = table.top_by_views(10);
        assert_eq!(top.len(), 3); // pop, music, lonely
        assert_eq!(clean.tags().name(top[0].0), "pop");
        assert!((top[0].1 - 1_100.0).abs() < 1e-9);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(table.top_by_views(1).len(), 1);
    }

    #[test]
    fn iter_visits_populated_rows_in_order() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let ids: Vec<usize> = table.iter().map(|(t, _)| t.index()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(table.populated_tags(), 3);
        let _ = clean;
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_reconstruction_panics() {
        let (clean, _) = setup();
        let mut b = DatasetBuilder::new(2);
        b.push_video("z", 1, &["t"], RawPopularity::decode(vec![61, 0], 2));
        let other = filter(&b.build());
        let recon = Reconstruction::compute(&other, &GeoDist::uniform(2)).unwrap();
        let _ = TagViewTable::aggregate(&clean, &recon);
    }

    /// The determinism contract: sharded aggregation is bit-identical
    /// at any thread count, even though float addition is not
    /// associative — chunking and merge order ignore the worker count.
    #[test]
    fn aggregation_is_thread_count_invariant() {
        let mut b = DatasetBuilder::new(3);
        for i in 0..700 {
            // Irregular tag overlap and view counts across chunks.
            let tags: Vec<String> = (0..=(i % 4))
                .map(|t| format!("tag{}", (i + t) % 37))
                .collect();
            let tag_refs: Vec<&str> = tags.iter().map(String::as_str).collect();
            let raw = vec![(i % 61 + 1) as u8, ((i * 7) % 61) as u8, 30];
            b.push_video(&format!("v{i}"), 10 + (i * i % 9_999) as u64, &tag_refs, {
                RawPopularity::decode(raw, 3)
            });
        }
        let clean = filter(&b.build());
        assert!(
            clean.len() > 600,
            "need multiple chunks, got {}",
            clean.len()
        );
        let recon = Reconstruction::compute(&clean, &GeoDist::uniform(3)).unwrap();
        let reference = TagViewTable::aggregate_with(&tagdist_par::Pool::new(1), &clean, &recon);
        for threads in [2, 5, 8] {
            let parallel =
                TagViewTable::aggregate_with(&tagdist_par::Pool::new(threads), &clean, &recon);
            assert_eq!(reference.country_count(), parallel.country_count());
            assert_eq!(reference.populated_tags(), parallel.populated_tags());
            for (tag, views) in reference.iter() {
                assert_eq!(
                    views.as_slice(),
                    parallel.views(tag).unwrap().as_slice(),
                    "tag {tag:?} diverged at {threads} threads"
                );
                assert_eq!(reference.video_count(tag), parallel.video_count(tag));
            }
        }
    }

    /// Eq. 3 conservation: every reconstructed view is counted once
    /// per carrying tag, so Σ_t views(t) = Σ_v |tags(v)|·views(v).
    #[test]
    fn mass_conservation_across_tags() {
        let (clean, recon) = setup();
        let table = TagViewTable::aggregate(&clean, &recon);
        let total_tagged: f64 = table.iter().map(|(_, v)| v.sum()).sum();
        let expected: f64 = clean
            .iter()
            .map(|v| v.tags.len() as f64 * v.total_views as f64)
            .sum();
        assert!((total_tagged - expected).abs() < 1e-6);
    }
}
