//! Per-video view reconstruction (inverting Eq. 1 via Eq. 2).

use tagdist_geo::{kernel, CountryMatrix, CountryVec, GeoDist, GeoError, PopularityVector};

use tagdist_dataset::CleanDataset;
use tagdist_obs::SpanGuard;
use tagdist_par::Pool;

/// Reconstructs a video's per-country view vector from its popularity
/// map, total view count and a traffic prior, writing into a
/// caller-owned row (normally a [`CountryMatrix`] row — no allocation).
///
/// Implements the paper's §3 inversion:
/// `views(v)[c] ∝ pop(v)[c] · p̂yt[c]`, rescaled so the entries sum to
/// `total_views` (which eliminates the per-video Map-Chart scale
/// `K(v)`).
///
/// # Errors
///
/// * [`GeoError::LengthMismatch`] if `pop`, `traffic` and `out`
///   disagree on the world size.
/// * [`GeoError::ZeroMass`] if `pop(v)[c]·p̂yt[c]` is zero everywhere —
///   an "empty" popularity vector, which the §2 filter is supposed to
///   have removed.
pub fn reconstruct_views_into(
    pop: &PopularityVector,
    total_views: u64,
    traffic: &GeoDist,
    out: &mut [f64],
) -> Result<(), GeoError> {
    reconstruct_intensities_into(pop.as_slice(), total_views, traffic, out)
}

/// [`reconstruct_views_into`] over raw intensity bytes — the columnar
/// hot path: [`CleanDataset`] stores every popularity vector as a
/// fixed-stride slice of its intensity block, so reconstruction reads
/// the bytes where they sit. Identical arithmetic, hence bit-identical
/// output, to the `PopularityVector` wrapper.
///
/// # Errors
///
/// As for [`reconstruct_views_into`].
pub fn reconstruct_intensities_into(
    intensities: &[u8],
    total_views: u64,
    traffic: &GeoDist,
    out: &mut [f64],
) -> Result<(), GeoError> {
    let prior = traffic.as_vec().as_slice();
    if intensities.len() != prior.len() {
        return Err(GeoError::LengthMismatch {
            left: intensities.len(),
            right: prior.len(),
        });
    }
    if out.len() != prior.len() {
        return Err(GeoError::LengthMismatch {
            left: out.len(),
            right: prior.len(),
        });
    }
    for ((o, &i), &p) in out.iter_mut().zip(intensities).zip(prior) {
        *o = f64::from(i) * p;
    }
    let mass = kernel::sum(out);
    if mass <= 0.0 || !mass.is_finite() {
        return Err(GeoError::ZeroMass);
    }
    kernel::scale(out, total_views as f64 / mass);
    Ok(())
}

/// Allocating convenience wrapper around [`reconstruct_views_into`].
///
/// # Errors
///
/// As for [`reconstruct_views_into`].
pub fn reconstruct_views(
    pop: &PopularityVector,
    total_views: u64,
    traffic: &GeoDist,
) -> Result<CountryVec, GeoError> {
    let mut out = vec![0.0; traffic.len()];
    reconstruct_views_into(pop, total_views, traffic, &mut out)?;
    Ok(CountryVec::from_values(out))
}

/// Reconstructed per-country views for every video of a
/// [`CleanDataset`], stored as one contiguous [`CountryMatrix`] (row
/// `i` ↔ dataset position `i`, the order of [`CleanDataset::iter`])
/// instead of one heap vector per video.
#[derive(Debug, Clone, PartialEq)]
pub struct Reconstruction {
    matrix: CountryMatrix,
}

impl Reconstruction {
    /// Reconstructs every video of `clean` under `traffic`.
    ///
    /// Videos are independent, so the corpus fans out over the
    /// `TAGDIST_THREADS` worker pool; each chunk writes its rows
    /// directly into the final flat buffer ([`Pool::par_fill`]), so
    /// there is no concatenation pass and the matrix is bit-identical
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// Returns the first per-video error in dataset order (see
    /// [`reconstruct_views_into`]). With a correctly filtered dataset
    /// and a strictly positive traffic prior this cannot fail.
    pub fn compute(clean: &CleanDataset, traffic: &GeoDist) -> Result<Reconstruction, GeoError> {
        Reconstruction::compute_with(&Pool::from_env(), clean, traffic)
    }

    /// [`compute`](Reconstruction::compute), instrumented: opens a
    /// `reconstruct` child span of `parent` and records the stage's
    /// deterministic counters (`reconstruct.videos`, `.cells`,
    /// `.rows_filled`) plus pool dispatch stats into its recorder.
    ///
    /// # Errors
    ///
    /// As for [`compute`](Reconstruction::compute).
    pub fn compute_obs(
        clean: &CleanDataset,
        traffic: &GeoDist,
        parent: &SpanGuard,
    ) -> Result<Reconstruction, GeoError> {
        let span = parent.child("reconstruct");
        let obs = span.recorder().clone();
        let pool = Pool::from_env().with_obs(&obs);
        obs.add("reconstruct.videos", clean.len() as u64);
        obs.add(
            "reconstruct.cells",
            (clean.len() * clean.country_count()) as u64,
        );
        let result = Reconstruction::compute_with(&pool, clean, traffic);
        if let Ok(recon) = &result {
            obs.add("reconstruct.rows_filled", recon.len() as u64);
        }
        result
    }

    /// [`compute`](Reconstruction::compute) on an explicit pool.
    ///
    /// # Errors
    ///
    /// As for [`compute`](Reconstruction::compute).
    pub fn compute_with(
        pool: &Pool,
        clean: &CleanDataset,
        traffic: &GeoDist,
    ) -> Result<Reconstruction, GeoError> {
        let cols = clean.country_count();
        // Chunk over the dense view-count column; each worker reads
        // its videos' intensities straight out of the clean dataset's
        // fixed-stride block — no per-video structs anywhere.
        let views = clean.views_column();
        let mut data = vec![0.0; views.len() * cols];
        let results = pool.par_fill(views, &mut data, cols, |start, chunk, block| {
            for (j, &total) in chunk.iter().enumerate() {
                reconstruct_intensities_into(
                    clean.intensities_of(start + j),
                    total,
                    traffic,
                    &mut block[j * cols..(j + 1) * cols],
                )?;
            }
            Ok::<(), GeoError>(())
        });
        // Chunk results come back in chunk order and each chunk stops
        // at its first failure, so this reports the first per-video
        // error in dataset order.
        for result in results {
            result?;
        }
        Ok(Reconstruction {
            matrix: CountryMatrix::from_flat(views.len(), cols, data)?,
        })
    }

    /// Wraps an already-computed matrix (the streaming-ingest engine's
    /// snapshot path, which reconstructs rows one video at a time with
    /// [`reconstruct_intensities_into`] — the same per-row arithmetic
    /// [`compute`](Reconstruction::compute) runs, hence bit-identical).
    pub(crate) fn from_matrix(matrix: CountryMatrix) -> Reconstruction {
        Reconstruction { matrix }
    }

    /// Number of reconstructed videos.
    pub fn len(&self) -> usize {
        self.matrix.rows()
    }

    /// Returns `true` if no videos were reconstructed.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// World size of every row.
    pub fn country_count(&self) -> usize {
        self.matrix.cols()
    }

    /// Estimated view vector of the video at dataset position `pos`,
    /// as a borrowed matrix row.
    pub fn views(&self, pos: usize) -> Option<&[f64]> {
        self.matrix.get_row(pos)
    }

    /// Estimated view *distribution* of the video at position `pos`.
    ///
    /// # Errors
    ///
    /// Propagates [`GeoError::ZeroMass`] for an out-of-range `pos`
    /// (never happens for rows produced by
    /// [`compute`](Reconstruction::compute), whose mass is positive by
    /// construction).
    pub fn distribution(&self, pos: usize) -> Result<GeoDist, GeoError> {
        let row = self.matrix.get_row(pos).ok_or(GeoError::ZeroMass)?;
        GeoDist::from_slice(row)
    }

    /// Iterates over the estimated view vectors in dataset order.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> + '_ {
        self.matrix.iter_rows()
    }

    /// The whole reconstruction as a contiguous matrix (the input the
    /// parallel aggregation and evaluation stages read rows from).
    pub fn matrix(&self) -> &CountryMatrix {
        &self.matrix
    }

    /// Sums all rows: the estimated per-country platform traffic
    /// implied by the reconstruction (an internal consistency check
    /// against the prior).
    pub fn implied_traffic(&self) -> CountryVec {
        self.matrix.column_sums()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_dataset::{filter, DatasetBuilder, RawPopularity};

    fn traffic2() -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(vec![3.0, 1.0])).unwrap()
    }

    fn assert_close(actual: &[f64], expected: &[f64]) {
        assert_eq!(actual.len(), expected.len());
        for (a, e) in actual.iter().zip(expected) {
            assert!((a - e).abs() < 1e-6, "{actual:?} vs {expected:?}");
        }
    }

    #[test]
    fn equal_intensity_splits_like_traffic() {
        let pop = PopularityVector::from_raw(vec![61, 61]).unwrap();
        let v = reconstruct_views(&pop, 1_000, &traffic2()).unwrap();
        assert_close(v.as_slice(), &[750.0, 250.0]);
    }

    #[test]
    fn zero_intensity_gets_zero_views() {
        let pop = PopularityVector::from_raw(vec![61, 0]).unwrap();
        let v = reconstruct_views(&pop, 500, &traffic2()).unwrap();
        assert_eq!(v.as_slice(), &[500.0, 0.0]);
    }

    #[test]
    fn totals_are_preserved() {
        let pop = PopularityVector::from_raw(vec![61, 17]).unwrap();
        let v = reconstruct_views(&pop, 12_345, &traffic2()).unwrap();
        assert!((v.sum() - 12_345.0).abs() < 1e-9);
    }

    #[test]
    fn into_variant_matches_the_allocating_one_bitwise() {
        let pop = PopularityVector::from_raw(vec![61, 17]).unwrap();
        let v = reconstruct_views(&pop, 12_345, &traffic2()).unwrap();
        let mut row = vec![7.0, 7.0]; // stale contents must be overwritten
        reconstruct_views_into(&pop, 12_345, &traffic2(), &mut row).unwrap();
        assert_eq!(v.as_slice(), row.as_slice());
    }

    #[test]
    fn into_variant_rejects_a_wrong_sized_row() {
        let pop = PopularityVector::from_raw(vec![61, 17]).unwrap();
        let mut row = vec![0.0; 3];
        assert!(matches!(
            reconstruct_views_into(&pop, 10, &traffic2(), &mut row),
            Err(GeoError::LengthMismatch { left: 3, right: 2 })
        ));
    }

    #[test]
    fn intensity_differences_scale_views() {
        // Same traffic share, different intensity ⇒ views scale with
        // intensity ratio.
        let traffic = GeoDist::uniform(2);
        let pop = PopularityVector::from_raw(vec![60, 30]).unwrap();
        let v = reconstruct_views(&pop, 900, &traffic).unwrap();
        assert!((v.as_slice()[0] - 600.0).abs() < 1e-9);
        assert!((v.as_slice()[1] - 300.0).abs() < 1e-9);
    }

    #[test]
    fn paper_fig1_interpretation() {
        // Fig. 1: the USA and Singapore share intensity 61, yet the
        // USA must receive vastly more reconstructed views because its
        // traffic share is vastly larger — exactly the paper's point
        // that pop(v) is NOT a view count.
        use tagdist_geo::{world, TrafficModel};
        let world_ = world();
        let traffic = TrafficModel::reference(world_);
        let us = world_.by_code("US").unwrap().id;
        let sg = world_.by_code("SG").unwrap().id;
        let mut raw = vec![0u8; world_.len()];
        raw[us.index()] = 61;
        raw[sg.index()] = 61;
        let pop = PopularityVector::from_raw(raw).unwrap();
        let v = reconstruct_views(&pop, 1_000_000, traffic.distribution()).unwrap();
        assert!(
            v[us] > 10.0 * v[sg],
            "US {} vs SG {} reconstructed views",
            v[us],
            v[sg]
        );
    }

    #[test]
    fn disjoint_support_is_zero_mass() {
        // Traffic mass only where the chart is dark.
        let traffic = GeoDist::from_counts(&CountryVec::from_values(vec![0.0, 1.0])).unwrap();
        let pop = PopularityVector::from_raw(vec![61, 0]).unwrap();
        assert_eq!(
            reconstruct_views(&pop, 10, &traffic),
            Err(GeoError::ZeroMass)
        );
    }

    #[test]
    fn length_mismatch_is_reported() {
        let pop = PopularityVector::from_raw(vec![61]).unwrap();
        assert!(matches!(
            reconstruct_views(&pop, 10, &traffic2()),
            Err(GeoError::LengthMismatch { .. })
        ));
    }

    fn clean2() -> CleanDataset {
        let mut b = DatasetBuilder::new(2);
        b.push_video("a", 1_000, &["x"], RawPopularity::decode(vec![61, 61], 2));
        b.push_video("b", 100, &["y"], RawPopularity::decode(vec![0, 61], 2));
        filter(&b.build())
    }

    #[test]
    fn reconstruction_covers_the_dataset() {
        let clean = clean2();
        let r = Reconstruction::compute(&clean, &traffic2()).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.country_count(), 2);
        assert_close(r.views(0).unwrap(), &[750.0, 250.0]);
        assert_close(r.views(1).unwrap(), &[0.0, 100.0]);
        assert!(r.views(2).is_none());
        assert_eq!(r.iter().count(), 2);
        assert_eq!(r.matrix().rows(), 2);
    }

    #[test]
    fn distributions_normalize_rows() {
        let clean = clean2();
        let r = Reconstruction::compute(&clean, &traffic2()).unwrap();
        let d = r.distribution(0).unwrap();
        assert!((d.as_vec().sum() - 1.0).abs() < 1e-12);
        assert!(r.distribution(99).is_err());
    }

    #[test]
    fn parallel_compute_is_thread_count_invariant() {
        let clean = clean2();
        let reference = Reconstruction::compute_with(&Pool::new(1), &clean, &traffic2()).unwrap();
        for threads in [2, 8] {
            let parallel =
                Reconstruction::compute_with(&Pool::new(threads), &clean, &traffic2()).unwrap();
            assert_eq!(reference.matrix(), parallel.matrix());
        }
        assert_eq!(reference.matrix().rows(), reference.len());
    }

    #[test]
    fn implied_traffic_sums_rows() {
        let clean = clean2();
        let r = Reconstruction::compute(&clean, &traffic2()).unwrap();
        assert_close(r.implied_traffic().as_slice(), &[750.0, 350.0]);
    }

    /// End-to-end on the synthetic platform: reconstructed view
    /// distributions must be much closer to ground truth than the
    /// traffic prior is.
    #[test]
    fn reconstruction_beats_the_prior_on_synthetic_truth() {
        use tagdist_crawler::{crawl, CrawlConfig};
        use tagdist_ytsim::{Platform, WorldConfig};

        let platform = Platform::generate(WorldConfig::tiny());
        let mut ccfg = CrawlConfig::default();
        ccfg.with_budget(800);
        let outcome = crawl(&platform, &ccfg);
        let clean = filter(&outcome.dataset);
        let traffic = platform.true_traffic();
        let r = Reconstruction::compute(&clean, traffic).unwrap();

        let mut js_recon = 0.0;
        let mut js_prior = 0.0;
        let mut n = 0.0;
        for (pos, video) in clean.iter().enumerate() {
            let truth = platform
                .ground_truth(video.key)
                .expect("crawled videos exist")
                .view_distribution();
            js_recon += r.distribution(pos).unwrap().js_divergence(&truth).unwrap();
            js_prior += traffic.js_divergence(&truth).unwrap();
            n += 1.0;
        }
        js_recon /= n;
        js_prior /= n;
        assert!(
            js_recon < 0.6 * js_prior,
            "reconstruction JS {js_recon} vs prior JS {js_prior}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn reconstruction_preserves_total_and_support(
            raw in proptest::collection::vec(0u8..=61, 2..40),
            weights in proptest::collection::vec(0.01f64..10.0, 2..40),
            total in 1u64..1_000_000_000
        ) {
            let n = raw.len().min(weights.len());
            let raw = &raw[..n];
            prop_assume!(raw.iter().any(|&b| b > 0));
            let pop = PopularityVector::from_raw(raw.to_vec()).unwrap();
            let traffic = GeoDist::from_counts(
                &CountryVec::from_values(weights[..n].to_vec())).unwrap();
            let v = reconstruct_views(&pop, total, &traffic).unwrap();
            // Total preserved.
            prop_assert!((v.sum() - total as f64).abs() / (total as f64) < 1e-9);
            // Support: zero intensity ⇒ zero views; positive ⇒ positive.
            for (i, &b) in raw.iter().enumerate() {
                let val = v.as_slice()[i];
                if b == 0 {
                    prop_assert_eq!(val, 0.0);
                } else {
                    prop_assert!(val > 0.0);
                }
            }
        }
    }
}
