//! Reconstruction-error measurement.
//!
//! The paper inverts Eq. 1 but has no ground truth to validate the
//! inversion against. The synthetic substrate does: every generated
//! video carries its true per-country view distribution, so experiment
//! E5 (DESIGN.md) can quantify how much signal survives the Map-Chart
//! quantization and how sensitive the pipeline is to Alexa-prior
//! noise.

use core::fmt;

use tagdist_geo::{GeoDist, GeoError};

/// Five-number-ish summary of a sample of per-video errors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorSummary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// Maximum.
    pub max: f64,
}

impl ErrorSummary {
    /// Summarizes a sample. Returns all zeros for an empty sample.
    pub fn from_samples(mut samples: Vec<f64>) -> ErrorSummary {
        if samples.is_empty() {
            return ErrorSummary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        let n = samples.len();
        ErrorSummary {
            mean: tagdist_geo::kernel::sum(&samples) / n as f64,
            median: samples[n / 2],
            p90: samples[((n as f64 * 0.9) as usize).min(n - 1)],
            max: samples[n - 1],
        }
    }
}

impl fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mean {:.4}, median {:.4}, p90 {:.4}, max {:.4}",
            self.mean, self.median, self.p90, self.max
        )
    }
}

/// Divergence of a set of estimated distributions from ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReport {
    /// Number of compared pairs.
    pub n: usize,
    /// Jensen–Shannon divergence (bits) per pair.
    pub js: ErrorSummary,
    /// Total-variation distance per pair.
    pub total_variation: ErrorSummary,
    /// Fraction of pairs whose most-viewing country matches — the
    /// coarse signal a geographic cache placement would use first.
    pub top_country_accuracy: f64,
}

impl ErrorReport {
    /// Compares estimates against truths, pairwise.
    ///
    /// # Errors
    ///
    /// Returns [`GeoError::LengthMismatch`] if the slices have
    /// different lengths or any pair covers different world sizes.
    pub fn compare(truth: &[GeoDist], estimate: &[GeoDist]) -> Result<ErrorReport, GeoError> {
        if truth.len() != estimate.len() {
            return Err(GeoError::LengthMismatch {
                left: truth.len(),
                right: estimate.len(),
            });
        }
        let mut js = Vec::with_capacity(truth.len());
        let mut tv = Vec::with_capacity(truth.len());
        let mut top_hits = 0usize;
        for (t, e) in truth.iter().zip(estimate) {
            js.push(t.js_divergence(e)?);
            tv.push(t.total_variation(e)?);
            if t.top_country() == e.top_country() {
                top_hits += 1;
            }
        }
        let n = truth.len();
        Ok(ErrorReport {
            n,
            js: ErrorSummary::from_samples(js),
            total_variation: ErrorSummary::from_samples(tv),
            top_country_accuracy: if n == 0 {
                0.0
            } else {
                top_hits as f64 / n as f64
            },
        })
    }
}

/// Mean signed per-country share error `estimate − truth`, averaged
/// over the corpus.
///
/// The whole-distribution metrics of [`ErrorReport`] hide *where*
/// the reconstruction errs. The bias vector reveals the systematic
/// pattern: 0–61 quantization rounds small intensities to zero, so
/// low-traffic countries are under-estimated and the saturated head
/// over-estimated.
///
/// # Errors
///
/// Returns [`GeoError::LengthMismatch`] if the slices have different
/// lengths, are empty, or any pair covers different world sizes.
pub fn country_bias(
    truth: &[GeoDist],
    estimate: &[GeoDist],
) -> Result<tagdist_geo::CountryVec, GeoError> {
    if truth.len() != estimate.len() || truth.is_empty() {
        return Err(GeoError::LengthMismatch {
            left: truth.len(),
            right: estimate.len(),
        });
    }
    let countries = truth[0].len();
    let mut bias = tagdist_geo::CountryVec::zeros(countries);
    for (t, e) in truth.iter().zip(estimate) {
        if t.len() != countries || e.len() != countries {
            return Err(GeoError::LengthMismatch {
                left: t.len(),
                right: e.len(),
            });
        }
        for i in 0..countries {
            let id = tagdist_geo::CountryId::from_index(i);
            bias[id] += e.prob(id) - t.prob(id);
        }
    }
    bias.scale(1.0 / truth.len() as f64);
    Ok(bias)
}

impl fmt::Display for ErrorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "n = {}", self.n)?;
        writeln!(f, "JS divergence:   {}", self.js)?;
        writeln!(f, "total variation: {}", self.total_variation)?;
        write!(
            f,
            "top-country acc: {:.1}%",
            100.0 * self.top_country_accuracy
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_geo::{CountryId, CountryVec};

    fn dist(values: &[f64]) -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(values.to_vec())).unwrap()
    }

    #[test]
    fn summary_of_known_sample() {
        let s = ErrorSummary::from_samples(vec![0.4, 0.1, 0.2, 0.3]);
        assert!((s.mean - 0.25).abs() < 1e-12);
        assert_eq!(s.median, 0.3); // element at index 2 of sorted
        assert_eq!(s.max, 0.4);
        assert_eq!(s.p90, 0.4);
    }

    #[test]
    fn summary_of_empty_sample_is_zero() {
        assert_eq!(ErrorSummary::from_samples(vec![]), ErrorSummary::default());
    }

    #[test]
    fn perfect_estimates_report_zero() {
        let d = vec![dist(&[0.7, 0.3]), dist(&[0.1, 0.9])];
        let r = ErrorReport::compare(&d, &d).unwrap();
        assert_eq!(r.n, 2);
        assert_eq!(r.js.max, 0.0);
        assert_eq!(r.total_variation.max, 0.0);
        assert_eq!(r.top_country_accuracy, 1.0);
    }

    #[test]
    fn opposite_estimates_report_large_errors() {
        let truth = vec![dist(&[1.0, 0.0])];
        let est = vec![dist(&[0.0, 1.0])];
        let r = ErrorReport::compare(&truth, &est).unwrap();
        assert!((r.js.mean - 1.0).abs() < 1e-9);
        assert!((r.total_variation.mean - 1.0).abs() < 1e-9);
        assert_eq!(r.top_country_accuracy, 0.0);
    }

    #[test]
    fn top_country_accuracy_counts_argmax_matches() {
        let truth = vec![dist(&[0.6, 0.4]), dist(&[0.4, 0.6])];
        let est = vec![dist(&[0.9, 0.1]), dist(&[0.9, 0.1])];
        let r = ErrorReport::compare(&truth, &est).unwrap();
        assert!((r.top_country_accuracy - 0.5).abs() < 1e-12);
        let _ = CountryId::from_index(0);
    }

    #[test]
    fn mismatched_inputs_error() {
        let a = vec![dist(&[1.0, 0.0])];
        let b: Vec<GeoDist> = vec![];
        assert!(ErrorReport::compare(&a, &b).is_err());
        let c = vec![dist(&[1.0, 0.0, 0.0])];
        assert!(ErrorReport::compare(&a, &c).is_err());
    }

    #[test]
    fn empty_comparison_is_valid() {
        let r = ErrorReport::compare(&[], &[]).unwrap();
        assert_eq!(r.n, 0);
        assert_eq!(r.top_country_accuracy, 0.0);
    }

    #[test]
    fn country_bias_is_signed_and_zero_sum() {
        // Estimate systematically moves 0.2 of share from country 1
        // to country 0.
        let truth = vec![dist(&[0.5, 0.5]), dist(&[0.3, 0.7])];
        let est = vec![dist(&[0.7, 0.3]), dist(&[0.5, 0.5])];
        let bias = country_bias(&truth, &est).unwrap();
        assert!((bias.as_slice()[0] - 0.2).abs() < 1e-12);
        assert!((bias.as_slice()[1] + 0.2).abs() < 1e-12);
        // Share errors always sum to zero across countries.
        assert!(bias.sum().abs() < 1e-12);
    }

    #[test]
    fn country_bias_of_perfect_estimates_is_zero() {
        let d = vec![dist(&[0.6, 0.4])];
        let bias = country_bias(&d, &d).unwrap();
        assert!(bias.as_slice().iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn country_bias_rejects_bad_inputs() {
        let a = vec![dist(&[1.0, 0.0])];
        assert!(country_bias(&a, &[]).is_err());
        assert!(country_bias(&[], &[]).is_err());
        let b = vec![dist(&[1.0, 0.0, 0.0])];
        assert!(country_bias(&a, &b).is_err());
    }

    #[test]
    fn display_is_informative() {
        let d = vec![dist(&[0.7, 0.3])];
        let r = ErrorReport::compare(&d, &d).unwrap();
        let text = r.to_string();
        assert!(text.contains("JS divergence"));
        assert!(text.contains("top-country acc"));
    }
}
