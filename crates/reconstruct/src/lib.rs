//! The paper's §3 pipeline: from popularity vectors to per-country
//! view estimates and per-tag geographic view distributions.
//!
//! YouTube never documented what its 0–61 popularity maps meant. The
//! paper interprets entry `pop(v)[c]` as a Google-Trends-style
//! *intensity*,
//!
//! ```text
//! pop(v)[c] = views(v)[c] / ytube[c] × K(v)          (Eq. 1)
//! ```
//!
//! approximates the unknown per-country platform traffic `ytube[c]`
//! with an Alexa-style distribution `p̂yt[c]` (Eq. 2), and eliminates
//! the per-video scale factor `K(v)` using the known total view count.
//! Solving for `views(v)[c]`:
//!
//! ```text
//! views(v)[c] ≈ pop(v)[c] · p̂yt[c]
//!               ─────────────────── × views(v)
//!               Σ_d pop(v)[d] · p̂yt[d]
//! ```
//!
//! [`reconstruct_views`] implements exactly that inversion;
//! [`Reconstruction`] applies it to a whole filtered dataset;
//! [`TagViewTable`] aggregates the estimates per tag (Eq. 3:
//! `views(t)[c] = Σ_{v ∋ t} views(v)[c]`); and [`error`] quantifies
//! reconstruction quality against ground truth — something the paper
//! could not do, and which our synthetic substrate makes measurable.
//!
//! # Example
//!
//! ```
//! use tagdist_geo::{CountryVec, GeoDist, PopularityVector};
//! use tagdist_reconstruct::reconstruct_views;
//!
//! # fn main() -> Result<(), tagdist_geo::GeoError> {
//! // Two-country world: traffic 75 % / 25 %, chart maxed in both.
//! let traffic = GeoDist::from_counts(&CountryVec::from_values(vec![3.0, 1.0]))?;
//! let pop = PopularityVector::from_raw(vec![61, 61]).unwrap();
//! let views = reconstruct_views(&pop, 1_000, &traffic)?;
//! // Equal intensity ⇒ views split like traffic.
//! assert!((views.as_slice()[0] - 750.0).abs() < 1e-6);
//! assert!((views.as_slice()[1] - 250.0).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod error;
pub mod ingest;
pub mod refine;
pub mod sensitivity;
pub mod tagviews;
pub mod views;

pub use error::{country_bias, ErrorReport, ErrorSummary};
pub use ingest::{EpochSnapshot, IngestEngine, IngestStats, SnapshotCell};
pub use refine::{refine_prior, RefinedPrior};
pub use sensitivity::Sensitivity;
pub use tagviews::TagViewTable;
pub use views::{reconstruct_views, Reconstruction};
