//! The [`MetricsReport`]: an immutable snapshot of a
//! [`crate::Recorder`], with JSON export/import and a human-readable
//! summary.
//!
//! The serialized layout enforces the determinism contract
//! structurally: [`MetricsReport::to_json`] puts counters and gauges
//! under a `"deterministic"` key and spans plus scheduling stats under
//! `"timing"`, and [`MetricsReport::deterministic_json`] emits *only*
//! the former — that string is what `cargo xtask bench-gate` diffs
//! against the checked-in baseline and what the cross-thread identity
//! tests compare byte for byte. `BTreeMap` storage makes the key order
//! (and hence the bytes) reproducible for free.

use std::collections::BTreeMap;

use crate::json::{JsonError, Value};

/// One closed span: a named wall-clock interval with an optional
/// parent, timestamped in nanoseconds from the recorder's origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage or operation name.
    pub name: String,
    /// Index of the parent span within [`MetricsReport::spans`].
    pub parent: Option<usize>,
    /// Start offset from the recorder origin, in nanoseconds.
    pub start_ns: u64,
    /// End offset from the recorder origin, in nanoseconds.
    pub end_ns: u64,
}

impl Span {
    /// The span's duration in nanoseconds (0 if the clock stepped).
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Snapshot of everything a [`crate::Recorder`] collected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Deterministic counters: pure functions of the input data.
    pub counters: BTreeMap<String, u64>,
    /// Deterministic gauges (maximum observed values).
    pub gauges: BTreeMap<String, u64>,
    /// Scheduling statistics — thread-dependent, reported under
    /// `timing`.
    pub sched: BTreeMap<String, u64>,
    /// The span tree, flat in creation order with parent indices.
    pub spans: Vec<Span>,
}

impl MetricsReport {
    /// All span names in creation order.
    #[must_use]
    pub fn span_names(&self) -> Vec<&str> {
        self.spans.iter().map(|s| s.name.as_str()).collect()
    }

    /// Serializes only the deterministic subtree:
    /// `{"counters":{...},"gauges":{...}}`, compact, keys sorted.
    ///
    /// For a fixed input this string is byte-identical at any
    /// `TAGDIST_THREADS` setting; the regression gate and the identity
    /// tests compare it directly.
    #[must_use]
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        self.deterministic_value().write(&mut out);
        out
    }

    /// Serializes the full report, deterministic and timing sections
    /// segregated.
    #[must_use]
    pub fn to_json(&self) -> String {
        let spans = Value::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Value::Obj(vec![
                        ("name".to_owned(), Value::Str(s.name.clone())),
                        (
                            "parent".to_owned(),
                            s.parent.map_or(Value::Null, |p| Value::Num(p.to_string())),
                        ),
                        ("start_ns".to_owned(), Value::Num(s.start_ns.to_string())),
                        ("end_ns".to_owned(), Value::Num(s.end_ns.to_string())),
                    ])
                })
                .collect(),
        );
        let doc = Value::Obj(vec![
            ("deterministic".to_owned(), self.deterministic_value()),
            (
                "timing".to_owned(),
                Value::Obj(vec![
                    ("sched".to_owned(), map_to_obj(&self.sched)),
                    ("spans".to_owned(), spans),
                ]),
            ),
        ]);
        let mut out = String::new();
        doc.write(&mut out);
        out
    }

    /// Parses a report serialized by [`MetricsReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the text is not valid JSON or does
    /// not have the expected `deterministic` / `timing` shape (missing
    /// sections, non-integer counters, span indices out of form).
    pub fn from_json(text: &str) -> Result<MetricsReport, JsonError> {
        let doc = Value::parse(text)?;
        let det = doc
            .get("deterministic")
            .ok_or_else(|| shape_err("missing \"deterministic\" section"))?;
        let timing = doc
            .get("timing")
            .ok_or_else(|| shape_err("missing \"timing\" section"))?;
        let counters = obj_to_map(det.get("counters"), "deterministic.counters")?;
        let gauges = obj_to_map(det.get("gauges"), "deterministic.gauges")?;
        let sched = obj_to_map(timing.get("sched"), "timing.sched")?;
        let raw_spans = timing
            .get("spans")
            .and_then(Value::as_array)
            .ok_or_else(|| shape_err("timing.spans must be an array"))?;
        let mut spans = Vec::with_capacity(raw_spans.len());
        for raw in raw_spans {
            let name = raw
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| shape_err("span without a string \"name\""))?
                .to_owned();
            let parent = match raw.get("parent") {
                None | Some(Value::Null) => None,
                Some(v) => Some(
                    v.as_u64()
                        .and_then(|p| usize::try_from(p).ok())
                        .ok_or_else(|| shape_err("span \"parent\" must be null or an index"))?,
                ),
            };
            let start_ns = raw
                .get("start_ns")
                .and_then(Value::as_u64)
                .ok_or_else(|| shape_err("span without integer \"start_ns\""))?;
            let end_ns = raw
                .get("end_ns")
                .and_then(Value::as_u64)
                .ok_or_else(|| shape_err("span without integer \"end_ns\""))?;
            spans.push(Span {
                name,
                parent,
                start_ns,
                end_ns,
            });
        }
        Ok(MetricsReport {
            counters,
            gauges,
            sched,
            spans,
        })
    }

    /// Renders a human-readable summary: the indented span tree with
    /// millisecond durations, then the deterministic counters and
    /// gauges, then the scheduling stats.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str("== metrics summary ==\n");
        if !self.spans.is_empty() {
            out.push_str("\nspans (wall-clock; not deterministic):\n");
            let mut lines: Vec<(String, String)> = Vec::with_capacity(self.spans.len());
            let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
            let mut roots = Vec::new();
            for (i, span) in self.spans.iter().enumerate() {
                match span.parent {
                    Some(p) if p < self.spans.len() => children[p].push(i),
                    _ => roots.push(i),
                }
            }
            // Depth-first, explicit stack; creation order within each
            // level is preserved by pushing children reversed.
            let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
            while let Some((i, depth)) = stack.pop() {
                let span = &self.spans[i];
                let label = format!("{:indent$}{}", "", span.name, indent = 2 * depth);
                let millis = span.duration_ns() as f64 / 1e6;
                lines.push((label, format!("{millis:.3} ms")));
                for &c in children[i].iter().rev() {
                    stack.push((c, depth + 1));
                }
            }
            push_table(&mut out, &lines);
        }
        push_map_section(&mut out, "deterministic counters", &self.counters);
        push_map_section(&mut out, "deterministic gauges", &self.gauges);
        push_map_section(&mut out, "scheduling (thread-dependent)", &self.sched);
        out
    }

    fn deterministic_value(&self) -> Value {
        Value::Obj(vec![
            ("counters".to_owned(), map_to_obj(&self.counters)),
            ("gauges".to_owned(), map_to_obj(&self.gauges)),
        ])
    }
}

fn map_to_obj(map: &BTreeMap<String, u64>) -> Value {
    Value::Obj(
        map.iter()
            .map(|(k, v)| (k.clone(), Value::Num(v.to_string())))
            .collect(),
    )
}

fn obj_to_map(value: Option<&Value>, ctx: &str) -> Result<BTreeMap<String, u64>, JsonError> {
    let entries = value
        .and_then(Value::entries)
        .ok_or_else(|| shape_err(&format!("{ctx} must be an object")))?;
    let mut map = BTreeMap::new();
    for (key, raw) in entries {
        let n = raw
            .as_u64()
            .ok_or_else(|| shape_err(&format!("{ctx}.{key} must be an unsigned integer")))?;
        map.insert(key.clone(), n);
    }
    Ok(map)
}

fn shape_err(message: &str) -> JsonError {
    JsonError {
        offset: 0,
        message: message.to_owned(),
    }
}

/// Appends `title:` and an aligned name/value table (skipped when the
/// map is empty).
fn push_map_section(out: &mut String, title: &str, map: &BTreeMap<String, u64>) {
    if map.is_empty() {
        return;
    }
    out.push('\n');
    out.push_str(title);
    out.push_str(":\n");
    let lines: Vec<(String, String)> = map
        .iter()
        .map(|(k, v)| (k.clone(), v.to_string()))
        .collect();
    push_table(out, &lines);
}

fn push_table(out: &mut String, lines: &[(String, String)]) {
    let width = lines
        .iter()
        .map(|(label, _)| label.len())
        .max()
        .unwrap_or(0);
    let value_width = lines.iter().map(|(_, v)| v.len()).max().unwrap_or(0);
    for (label, value) in lines {
        out.push_str(&format!("  {label:<width$}  {value:>value_width$}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn sample() -> MetricsReport {
        let r = Recorder::new();
        {
            let root = r.span("study");
            let _crawl = root.child("crawl");
            let agg = root.child("aggregate");
            let _inner = agg.child("rows");
            r.add("items", 10);
            r.add("rows", 4);
            r.gauge_max("peak", 9);
            r.add_sched("fanouts", 2);
        }
        r.finish()
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let report = sample();
        let text = report.to_json();
        let back = MetricsReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // And serializing the parsed report reproduces the bytes.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn deterministic_json_excludes_timing() {
        let report = sample();
        let det = report.deterministic_json();
        assert!(det.contains("\"items\":10"));
        assert!(det.contains("\"peak\":9"));
        assert!(!det.contains("fanouts"), "sched leaked: {det}");
        assert!(!det.contains("span"), "spans leaked: {det}");
        assert!(!det.contains("_ns"), "timestamps leaked: {det}");

        // Identical counters with different timings → identical bytes.
        let mut other = sample();
        for span in &mut other.spans {
            span.end_ns += 1_000_000;
        }
        other.sched.insert("fanouts".into(), 99);
        assert_eq!(other.deterministic_json(), det);
    }

    #[test]
    fn deterministic_json_keys_are_sorted() {
        let mut report = MetricsReport::default();
        report.counters.insert("zeta".into(), 1);
        report.counters.insert("alpha".into(), 2);
        assert_eq!(
            report.deterministic_json(),
            "{\"counters\":{\"alpha\":2,\"zeta\":1},\"gauges\":{}}"
        );
    }

    #[test]
    fn from_json_rejects_malformed_shapes() {
        assert!(MetricsReport::from_json("not json").is_err());
        assert!(MetricsReport::from_json("{}").is_err());
        assert!(MetricsReport::from_json("{\"deterministic\":{}}").is_err());
        let bad_counter = "{\"deterministic\":{\"counters\":{\"x\":\"y\"},\"gauges\":{}},\
                           \"timing\":{\"sched\":{},\"spans\":[]}}";
        assert!(MetricsReport::from_json(bad_counter).is_err());
        let bad_span = "{\"deterministic\":{\"counters\":{},\"gauges\":{}},\
                        \"timing\":{\"sched\":{},\"spans\":[{\"name\":1}]}}";
        assert!(MetricsReport::from_json(bad_span).is_err());
    }

    #[test]
    fn summary_renders_the_tree_and_tables() {
        let text = sample().summary();
        assert!(text.contains("study"));
        assert!(text.contains("    rows"), "nesting lost:\n{text}");
        assert!(text.contains("ms"));
        assert!(text.contains("deterministic counters"));
        assert!(text.contains("items"));
        assert!(text.contains("scheduling (thread-dependent)"));
        // An empty report still renders a header without panicking.
        assert!(MetricsReport::default().summary().contains("metrics"));
    }

    #[test]
    fn span_durations_saturate() {
        let span = Span {
            name: "x".into(),
            parent: None,
            start_ns: 10,
            end_ns: 4,
        };
        assert_eq!(span.duration_ns(), 0);
    }
}
