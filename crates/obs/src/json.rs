//! A minimal, dependency-free JSON value: writer plus
//! recursive-descent parser.
//!
//! The workspace vendors no serde, and the metrics pipeline needs both
//! directions — [`crate::MetricsReport`] serializes itself, and
//! `cargo xtask bench-gate` parses reports back to diff deterministic
//! counters against a checked-in baseline.
//!
//! Two deliberate deviations from a general-purpose JSON library keep
//! the tool honest about determinism:
//!
//! * Objects are ordered association lists (`Vec<(String, Value)>`),
//!   never hash maps — serializing a parsed document reproduces the
//!   original key order byte for byte.
//! * Numbers are stored as their raw source text and only interpreted
//!   on demand ([`Value::as_u64`] / [`Value::as_f64`]), so a
//!   parse/serialize round trip cannot change a single digit.

/// One JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as an ordered association list.
    Obj(Vec<(String, Value)>),
}

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses a JSON document (one value plus trailing whitespace).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte —
    /// unterminated strings, bad escapes, trailing garbage, unknown
    /// literals.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a number that parses
    /// as one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's members in document order, if it is an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Serializes the value compactly (no whitespace) into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl core::fmt::Display for Value {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes `s` as a quoted, escaped JSON string.
pub fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = core::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't' | b'f' | b'n') => self.literal(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn literal(&mut self) -> Result<Value, JsonError> {
        for (text, value) in [
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("null", Value::Null),
        ] {
            if self.bytes[self.pos..].starts_with(text.as_bytes()) {
                self.pos += text.len();
                return Ok(value);
            }
        }
        Err(self.error("unknown literal"))
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0usize;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            digits += 1;
            self.pos += 1;
        }
        if digits == 0 {
            return Err(self.error("expected digits"));
        }
        let raw = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("number is not UTF-8"))?;
        Ok(Value::Num(raw.to_owned()))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            out.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = core::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("string is not UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.error("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) -> String {
        Value::parse(text).unwrap().to_string()
    }

    #[test]
    fn scalars_parse_and_serialize() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip("false"), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-3.25e2"), "-3.25e2");
        assert_eq!(roundtrip("\"hi\\nthere\""), "\"hi\\nthere\"");
    }

    #[test]
    fn numbers_keep_their_source_text() {
        let v = Value::parse("0.3000000000000000444").unwrap();
        assert_eq!(v.to_string(), "0.3000000000000000444");
        assert!(v.as_f64().unwrap() > 0.29);
        assert_eq!(Value::parse("18446744073709551615").unwrap().as_u64(), {
            Some(u64::MAX)
        });
    }

    #[test]
    fn objects_preserve_key_order() {
        let text = "{\"z\":1,\"a\":[true,null],\"m\":{\"k\":\"v\"}}";
        assert_eq!(roundtrip(text), text);
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("z").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("a").and_then(Value::as_array).map(<[Value]>::len), {
            Some(2)
        });
        assert_eq!(
            v.get("m").and_then(|m| m.get("k")).and_then(Value::as_str),
            Some("v")
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Value::parse(" {\n\t\"a\" : [ 1 , 2 ] ,\r\n \"b\" : false } ").unwrap();
        assert_eq!(v.to_string(), "{\"a\":[1,2],\"b\":false}");
    }

    #[test]
    fn escapes_round_trip() {
        let original = Value::Str("quote \" slash \\ tab \t unicode \u{1F600} nul \u{0001}".into());
        let text = original.to_string();
        assert_eq!(Value::parse(&text).unwrap(), original);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Value::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(err.to_string().contains("byte 6"), "{err}");
        assert!(Value::parse("").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("[1] garbage").is_err());
        assert!(Value::parse("\"open").is_err());
        assert!(Value::parse("troo").is_err());
        assert!(Value::parse("{\"k\" 1}").is_err());
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = Value::parse("[1]").unwrap();
        assert!(v.as_u64().is_none());
        assert!(v.as_str().is_none());
        assert!(v.as_bool().is_none());
        assert!(v.entries().is_none());
        assert!(v.get("k").is_none());
        assert!(Value::Num("1.5".into()).as_u64().is_none());
    }
}
