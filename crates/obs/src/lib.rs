//! `tagdist-obs` — the workspace's observability substrate.
//!
//! Every pipeline stage of the reproduction (crawl → filter →
//! reconstruct → aggregate → predict → cache) can record into a
//! [`Recorder`]: a cheap cloneable handle that is either *enabled*
//! (backed by shared state behind a mutex) or *disabled* (every
//! operation a no-op, so un-instrumented callers pay nothing).
//!
//! Two kinds of measurements are kept strictly apart (DESIGN.md §10):
//!
//! * **Deterministic counters and gauges** — item counts, rows filled,
//!   cache hits, crawler frontier sizes. These are pure functions of
//!   the inputs, never of thread scheduling, so their serialized form
//!   ([`MetricsReport::deterministic_json`]) is byte-identical at any
//!   `TAGDIST_THREADS` setting — which is what lets CI gate on them
//!   exactly (`cargo xtask bench-gate`).
//! * **Timing** — hierarchical wall-clock [`SpanGuard`] spans and
//!   scheduling statistics (worker fan-outs, task claims). These vary
//!   run to run and live in a segregated `timing` section of the JSON
//!   report.
//!
//! # Example
//!
//! ```
//! use tagdist_obs::Recorder;
//!
//! let recorder = Recorder::new();
//! {
//!     let stage = recorder.span("stage");
//!     let _inner = stage.child("inner");
//!     recorder.add("items", 42);
//! }
//! let report = recorder.finish();
//! assert_eq!(report.counters["items"], 42);
//! assert!(report.span_names().contains(&"inner"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod json;
pub mod recorder;
pub mod report;

pub use json::{JsonError, Value};
pub use recorder::{Recorder, SpanGuard};
pub use report::{MetricsReport, Span};
