//! The [`Recorder`]: a cloneable handle that pipeline stages record
//! spans, counters, and gauges into.
//!
//! A recorder is either *enabled* (all clones share one state behind a
//! mutex) or *disabled* (every operation returns immediately). The
//! disabled form is the default, so un-instrumented call paths — all
//! the existing public APIs — pay one `Option` check per call and no
//! allocation, no lock.
//!
//! Three measurement families, kept apart on purpose:
//!
//! * [`Recorder::add`] / [`Recorder::gauge_max`] — **deterministic**
//!   counters and gauges. Callers must only feed these values derived
//!   from the input data (lengths, sums, hit tallies), never from the
//!   execution path, so the resulting report is identical at any
//!   thread count.
//! * [`Recorder::add_sched`] — scheduling statistics (fan-outs, worker
//!   counts). Legitimately thread-dependent; reported under `timing`.
//! * [`Recorder::span`] / [`SpanGuard::child`] — wall-clock spans,
//!   measured against the recorder's own monotonic origin.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::report::{MetricsReport, Span};

/// Interior state shared by all clones of an enabled recorder.
#[derive(Debug)]
struct Inner {
    /// Monotonic zero point; all span timestamps are offsets from it.
    origin: Instant,
    state: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    spans: Vec<SpanData>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    sched: BTreeMap<String, u64>,
}

#[derive(Debug, Clone)]
struct SpanData {
    name: String,
    parent: Option<usize>,
    start_ns: u64,
    end_ns: Option<u64>,
}

/// A handle for recording metrics; cheap to clone and share.
///
/// See the [module docs](self) for the enabled/disabled split and the
/// deterministic-vs-timing contract.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// An enabled recorder with a fresh time origin and empty state.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                origin: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// A disabled recorder: every operation is a no-op.
    ///
    /// This is also what [`Recorder::default`] returns, so structs can
    /// hold a `Recorder` field without opting into instrumentation.
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this handle records anything.
    ///
    /// Callers with non-trivial metric *derivation* cost (not just the
    /// recording call) can branch on this; plain `add` calls do not
    /// need the check.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut State, Instant) -> R) -> Option<R> {
        self.inner.as_deref().map(|inner| {
            let mut state = inner.state.lock().unwrap_or_else(PoisonError::into_inner);
            f(&mut state, inner.origin)
        })
    }

    /// Adds `delta` to the deterministic counter `name`.
    ///
    /// Only pass values derived from input data — see the
    /// [module docs](self).
    pub fn add(&self, name: &str, delta: u64) {
        self.with_state(|state, _| {
            *state.counters.entry(name.to_owned()).or_insert(0) += delta;
        });
    }

    /// Raises the deterministic gauge `name` to at least `value`.
    ///
    /// Gauges keep the maximum observed value (e.g. peak crawler
    /// frontier size). Max is order-independent, so concurrent
    /// observers still produce a deterministic result.
    pub fn gauge_max(&self, name: &str, value: u64) {
        self.with_state(|state, _| {
            let slot = state.gauges.entry(name.to_owned()).or_insert(0);
            *slot = (*slot).max(value);
        });
    }

    /// Adds `delta` to the scheduling statistic `name`.
    ///
    /// Scheduling stats (fan-outs, worker counts, task claims) depend
    /// on `TAGDIST_THREADS` and are reported in the `timing` section,
    /// never in the deterministic subtree.
    pub fn add_sched(&self, name: &str, delta: u64) {
        self.with_state(|state, _| {
            *state.sched.entry(name.to_owned()).or_insert(0) += delta;
        });
    }

    /// Opens a root span named `name`; it closes when the guard drops.
    #[must_use]
    pub fn span(&self, name: &str) -> SpanGuard {
        self.open_span(name, None)
    }

    fn open_span(&self, name: &str, parent: Option<usize>) -> SpanGuard {
        let id = self.with_state(|state, origin| {
            let start_ns = elapsed_ns(origin);
            state.spans.push(SpanData {
                name: name.to_owned(),
                parent,
                start_ns,
                end_ns: None,
            });
            state.spans.len() - 1
        });
        SpanGuard {
            recorder: self.clone(),
            id,
        }
    }

    fn close_span(&self, id: usize) {
        self.with_state(|state, origin| {
            let now = elapsed_ns(origin);
            if let Some(span) = state.spans.get_mut(id) {
                if span.end_ns.is_none() {
                    span.end_ns = Some(now);
                }
            }
        });
    }

    /// Snapshots everything recorded so far into a [`MetricsReport`].
    ///
    /// Spans still open at this moment are reported as ending now;
    /// their guards keep working and simply lose the race.
    #[must_use]
    pub fn finish(&self) -> MetricsReport {
        self.with_state(|state, origin| {
            let now = elapsed_ns(origin);
            MetricsReport {
                counters: state.counters.clone(),
                gauges: state.gauges.clone(),
                sched: state.sched.clone(),
                spans: state
                    .spans
                    .iter()
                    .map(|s| Span {
                        name: s.name.clone(),
                        parent: s.parent,
                        start_ns: s.start_ns,
                        end_ns: s.end_ns.unwrap_or(now),
                    })
                    .collect(),
            }
        })
        .unwrap_or_default()
    }
}

fn elapsed_ns(origin: Instant) -> u64 {
    u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// An open span; dropping it records the end timestamp.
///
/// Guards are `Send + Sync` (they only hold a recorder handle and an
/// index), so a parent span can be shared with pool workers that open
/// [`SpanGuard::child`] spans concurrently.
#[derive(Debug)]
pub struct SpanGuard {
    recorder: Recorder,
    /// `None` when the recorder is disabled.
    id: Option<usize>,
}

impl SpanGuard {
    /// A guard attached to nothing; children of it are also no-ops.
    ///
    /// Lets internal APIs take `&SpanGuard` unconditionally while
    /// un-instrumented callers pass a throwaway.
    #[must_use]
    pub fn disabled() -> SpanGuard {
        SpanGuard {
            recorder: Recorder::disabled(),
            id: None,
        }
    }

    /// Opens a child span of this one.
    #[must_use]
    pub fn child(&self, name: &str) -> SpanGuard {
        self.recorder.open_span(name, self.id)
    }

    /// The recorder this span records into (disabled for a disabled
    /// guard) — lets a function that received only a span also bump
    /// counters.
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.recorder.close_span(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Recorder::new();
        r.add("items", 3);
        r.add("items", 4);
        r.gauge_max("peak", 10);
        r.gauge_max("peak", 6);
        r.add_sched("fanouts", 1);
        let report = r.finish();
        assert_eq!(report.counters["items"], 7);
        assert_eq!(report.gauges["peak"], 10);
        assert_eq!(report.sched["fanouts"], 1);
    }

    #[test]
    fn span_tree_records_parents_and_closes_in_order() {
        let r = Recorder::new();
        {
            let root = r.span("root");
            let a = root.child("a");
            drop(a);
            let b = root.child("b");
            let bb = b.child("bb");
            drop(bb);
        }
        let report = r.finish();
        let names = report.span_names();
        assert_eq!(names, vec!["root", "a", "b", "bb"]);
        assert_eq!(report.spans[0].parent, None);
        assert_eq!(report.spans[1].parent, Some(0));
        assert_eq!(report.spans[2].parent, Some(0));
        assert_eq!(report.spans[3].parent, Some(2));
        for span in &report.spans {
            assert!(span.end_ns >= span.start_ns, "{span:?}");
        }
        // Children start no earlier than their parent.
        assert!(report.spans[3].start_ns >= report.spans[2].start_ns);
    }

    #[test]
    fn finish_closes_open_spans_without_ending_them() {
        let r = Recorder::new();
        let root = r.span("root");
        let snapshot = r.finish();
        assert_eq!(snapshot.spans.len(), 1);
        assert!(snapshot.spans[0].end_ns >= snapshot.spans[0].start_ns);
        drop(root);
        let after = r.finish();
        assert!(after.spans[0].end_ns >= snapshot.spans[0].end_ns);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.add("items", 1);
        r.gauge_max("peak", 1);
        r.add_sched("fanouts", 1);
        let guard = r.span("root");
        let _child = guard.child("child");
        let report = r.finish();
        assert!(report.counters.is_empty());
        assert!(report.gauges.is_empty());
        assert!(report.sched.is_empty());
        assert!(report.spans.is_empty());

        let detached = SpanGuard::disabled();
        let _grandchild = detached.child("x");
        assert!(!detached.recorder().is_enabled());
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::new();
        let clone = r.clone();
        clone.add("shared", 5);
        assert_eq!(r.finish().counters["shared"], 5);
    }

    #[test]
    fn concurrent_adds_from_pool_workers_are_exact() {
        use tagdist_par::Pool;

        let r = Recorder::new();
        let root = r.span("parallel");
        let items: Vec<u64> = (0..10_000).collect();
        let pool = Pool::new(8);
        let sums = pool.par_chunks(&items, |_, chunk| {
            let _span = root.child("worker-chunk");
            let sum: u64 = chunk.iter().sum();
            r.add("sum", sum);
            r.add("chunks_seen", 1);
            sum
        });
        drop(root);
        let expected: u64 = items.iter().sum();
        assert_eq!(sums.iter().sum::<u64>(), expected);

        let report = r.finish();
        assert_eq!(report.counters["sum"], expected);
        // Every worker-chunk span hangs off the shared parent.
        let worker_spans: Vec<_> = report
            .spans
            .iter()
            .filter(|s| s.name == "worker-chunk")
            .collect();
        assert_eq!(worker_spans.len() as u64, report.counters["chunks_seen"]);
        assert!(worker_spans.iter().all(|s| s.parent == Some(0)));
        assert!(worker_spans.iter().all(|s| s.end_ns >= s.start_ns));
    }
}
