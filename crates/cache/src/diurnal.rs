//! Diurnal demand modelling.
//!
//! The paper's opening citation (Guillemin et al., reference 5) is about
//! caching efficiency for YouTube traffic *“during peak periods”* — an
//! ISP's problem is the evening peak, not the daily mean. This module
//! adds the time dimension the flat request stream lacks: viewers are
//! active in *their* evening, so each country's demand follows a
//! sinusoidal local-time profile shifted by its UTC offset, and a
//! placement is judged by the **peak** origin load it leaves.
//!
//! Global demand stays comparatively flat (time zones interleave);
//! per-country demand swings hard — which is exactly why per-country
//! proactive placement pays off at peak.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tagdist_geo::{CountryId, GeoDist, World};

use crate::placement::Placement;
use crate::request::Request;

/// Sinusoidal local-time activity profile.
///
/// # Example
///
/// ```
/// use tagdist_cache::DiurnalModel;
///
/// let m = DiurnalModel::default_2011();
/// // Peak evening activity vs morning trough.
/// assert!(m.activity(20.5) > m.activity(8.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalModel {
    /// Local hour of peak activity (0–24).
    pub peak_local_hour: f64,
    /// Relative swing in `[0, 1]`: activity ranges over
    /// `[1 − amplitude, 1 + amplitude]`.
    pub amplitude: f64,
}

impl DiurnalModel {
    /// The 2011 residential-ISP shape: peak at 20:30 local, ±80 %
    /// swing.
    pub fn default_2011() -> DiurnalModel {
        DiurnalModel {
            peak_local_hour: 20.5,
            amplitude: 0.8,
        }
    }

    /// Relative activity at a local hour (mean 1.0 over the day).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the model's amplitude is outside
    /// `[0, 1]`.
    pub fn activity(&self, local_hour: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&self.amplitude));
        let phase = (local_hour - self.peak_local_hour) / 24.0 * core::f64::consts::TAU;
        1.0 + self.amplitude * phase.cos()
    }

    /// Relative activity of `country` at a given UTC hour.
    pub fn country_activity(&self, world: &World, country: CountryId, utc_hour: f64) -> f64 {
        let local = (utc_hour + world.country(country).utc_offset_hours).rem_euclid(24.0);
        self.activity(local)
    }
}

impl Default for DiurnalModel {
    fn default() -> DiurnalModel {
        DiurnalModel::default_2011()
    }
}

/// A request with its UTC timestamp (hours in `[0, 24)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedRequest {
    /// UTC time of day, hours.
    pub utc_hour: f64,
    /// The request itself.
    pub request: Request,
}

/// A pre-materialized diurnal request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequestStream {
    requests: Vec<TimedRequest>,
    country_count: usize,
}

impl TimedRequestStream {
    /// Generates `n` timed requests: the video is drawn by `weights`,
    /// the UTC time uniformly, and the originating country by
    /// `dists[video]` *modulated by each country's local-time
    /// activity*.
    ///
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`RequestStream::generate`](crate::RequestStream::generate).
    pub fn generate(
        world: &World,
        model: &DiurnalModel,
        dists: &[GeoDist],
        weights: &[f64],
        n: usize,
        seed: u64,
    ) -> TimedRequestStream {
        assert_eq!(dists.len(), weights.len(), "one weight per distribution");
        assert!(!dists.is_empty(), "need at least one video");
        let country_count = dists[0].len();
        assert!(
            dists.iter().all(|d| d.len() == country_count),
            "distributions must cover the same world"
        );
        assert!(
            country_count <= world.len(),
            "more countries than the registry"
        );

        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total request weight must be positive");

        // Per-country activity is a function of (country, hour); a
        // 24-bin cache keeps generation O(countries) per request.
        let activity: Vec<[f64; 24]> = (0..country_count)
            .map(|c| {
                let mut hours = [0.0f64; 24];
                for (h, slot) in hours.iter_mut().enumerate() {
                    *slot = model.country_activity(world, CountryId::from_index(c), h as f64 + 0.5);
                }
                hours
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(seed);
        let requests = (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>() * acc;
                let video = match cdf.binary_search_by(|c| c.total_cmp(&u)) {
                    Ok(i) | Err(i) => i.min(cdf.len() - 1),
                };
                let utc_hour: f64 = rng.gen::<f64>() * 24.0;
                let bin = (utc_hour as usize).min(23);

                // Country ∝ dist[c] · activity(c, t).
                let dist = &dists[video];
                let total: f64 = (0..country_count)
                    .map(|c| dist.prob(CountryId::from_index(c)) * activity[c][bin])
                    .sum();
                let mut draw: f64 = rng.gen::<f64>() * total;
                let mut country = CountryId::from_index(country_count - 1);
                for (c, hours) in activity.iter().enumerate() {
                    let id = CountryId::from_index(c);
                    draw -= dist.prob(id) * hours[bin];
                    if draw < 0.0 {
                        country = id;
                        break;
                    }
                }
                TimedRequest {
                    utc_hour,
                    request: Request { video, country },
                }
            })
            .collect();
        TimedRequestStream {
            requests,
            country_count,
        }
    }

    /// The timed requests in generation order.
    pub fn requests(&self) -> &[TimedRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` for a zero-length stream.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Requests per UTC hour for one country (24 bins).
    pub fn country_hourly_load(&self, country: CountryId) -> [usize; 24] {
        let mut bins = [0usize; 24];
        for r in &self.requests {
            if r.request.country == country {
                bins[(r.utc_hour as usize).min(23)] += 1;
            }
        }
        bins
    }
}

/// Origin load per UTC hour left behind by a placement.
#[derive(Debug, Clone, PartialEq)]
pub struct PeakReport {
    /// Placement name.
    pub policy: String,
    /// Total requests per UTC hour.
    pub requests_per_hour: [usize; 24],
    /// Origin fetches (local-cache misses) per UTC hour.
    pub origin_per_hour: [usize; 24],
}

impl PeakReport {
    /// Replays a timed stream against a static placement.
    pub fn analyze(placement: &Placement, stream: &TimedRequestStream) -> PeakReport {
        let mut requests_per_hour = [0usize; 24];
        let mut origin_per_hour = [0usize; 24];
        for r in stream.requests() {
            let bin = (r.utc_hour as usize).min(23);
            requests_per_hour[bin] += 1;
            if !placement.contains(r.request.country, r.request.video) {
                origin_per_hour[bin] += 1;
            }
        }
        PeakReport {
            policy: placement.name().to_owned(),
            requests_per_hour,
            origin_per_hour,
        }
    }

    /// The UTC hour with the highest origin load.
    pub fn peak_hour(&self) -> usize {
        self.origin_per_hour
            .iter()
            .enumerate()
            .max_by_key(|&(_, &v)| v)
            .map(|(h, _)| h)
            .unwrap_or(0)
    }

    /// Origin fetches in the worst hour.
    pub fn peak_origin(&self) -> usize {
        *self.origin_per_hour.iter().max().unwrap_or(&0)
    }

    /// Peak-to-mean ratio of the origin load (1.0 = flat).
    pub fn peak_to_mean(&self) -> f64 {
        let total: usize = self.origin_per_hour.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.peak_origin() as f64 / (total as f64 / 24.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_geo::{world, CountryVec};

    fn id(code: &str) -> CountryId {
        world().by_code(code).unwrap().id
    }

    fn point_dist(country: CountryId) -> GeoDist {
        GeoDist::point_mass(world().len(), country)
    }

    #[test]
    fn activity_peaks_at_the_peak_hour() {
        let m = DiurnalModel::default_2011();
        let peak = m.activity(20.5);
        assert!((peak - 1.8).abs() < 1e-9);
        let trough = m.activity(8.5);
        assert!((trough - 0.2).abs() < 1e-9);
        // Mean over the day is ~1.
        let mean: f64 = (0..240).map(|i| m.activity(i as f64 / 10.0)).sum::<f64>() / 240.0;
        assert!((mean - 1.0).abs() < 1e-3);
    }

    #[test]
    fn country_activity_shifts_with_utc_offset() {
        let m = DiurnalModel::default_2011();
        // Japan (UTC+9) peaks when UTC is 20.5 − 9 = 11.5.
        let jp = id("JP");
        let at_peak = m.country_activity(world(), jp, 11.5);
        assert!((at_peak - 1.8).abs() < 1e-9, "{at_peak}");
        // Brazil (UTC−3) peaks at UTC 23.5.
        let br = id("BR");
        let at_peak = m.country_activity(world(), br, 23.5);
        assert!((at_peak - 1.8).abs() < 1e-9, "{at_peak}");
    }

    #[test]
    fn single_country_stream_clusters_around_local_evening() {
        let jp = id("JP");
        let stream = TimedRequestStream::generate(
            world(),
            &DiurnalModel::default_2011(),
            &[point_dist(jp)],
            &[1.0],
            20_000,
            4,
        );
        // With a point-mass geography the country never varies…
        assert!(stream.requests().iter().all(|r| r.request.country == jp));
        // …and the *time* distribution is uniform (time is drawn
        // first); the diurnal effect shows in country choice when the
        // geography is spread, tested below.
        let bins = stream.country_hourly_load(jp);
        assert_eq!(bins.iter().sum::<usize>(), 20_000);
    }

    #[test]
    fn diurnal_modulation_shifts_country_choice_by_hour() {
        // A video watched equally in Japan and Brazil: at UTC 11.5
        // (JP evening, BR morning) Japanese requests must dominate.
        let jp = id("JP");
        let br = id("BR");
        let mut counts = CountryVec::zeros(world().len());
        counts[jp] = 0.5;
        counts[br] = 0.5;
        let dist = GeoDist::from_counts(&counts).unwrap();
        let stream = TimedRequestStream::generate(
            world(),
            &DiurnalModel::default_2011(),
            &[dist],
            &[1.0],
            60_000,
            9,
        );
        let mut jp_morning = 0usize; // UTC 11–12: JP local 20–21 (peak)
        let mut br_morning = 0usize;
        for r in stream.requests() {
            if (11.0..12.0).contains(&r.utc_hour) {
                if r.request.country == jp {
                    jp_morning += 1;
                } else if r.request.country == br {
                    br_morning += 1;
                }
            }
        }
        assert!(
            jp_morning as f64 > 3.0 * br_morning as f64,
            "JP {jp_morning} vs BR {br_morning} at JP peak"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let dist = point_dist(id("FR"));
        let m = DiurnalModel::default_2011();
        let a =
            TimedRequestStream::generate(world(), &m, std::slice::from_ref(&dist), &[1.0], 500, 1);
        let b = TimedRequestStream::generate(world(), &m, &[dist], &[1.0], 500, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn peak_report_accounts_consistently() {
        let fr = id("FR");
        let dist = point_dist(fr);
        let stream = TimedRequestStream::generate(
            world(),
            &DiurnalModel::default_2011(),
            &[dist.clone(), dist],
            &[1.0, 1.0],
            5_000,
            2,
        );
        // Cache only video 0 everywhere (capacity 1 of 2).
        let placement = Placement::geo_blind(world().len(), 1, &[2.0, 1.0]);
        let report = PeakReport::analyze(&placement, &stream);
        assert_eq!(report.requests_per_hour.iter().sum::<usize>(), 5_000);
        let origin_total: usize = report.origin_per_hour.iter().sum();
        assert!(origin_total > 0 && origin_total < 5_000);
        assert!(report.peak_origin() >= origin_total / 24);
        assert!(report.peak_to_mean() >= 1.0);
        assert!(report.peak_hour() < 24);
    }

    #[test]
    fn empty_stream_peak_report_is_zero() {
        let stream = TimedRequestStream::generate(
            world(),
            &DiurnalModel::default_2011(),
            &[point_dist(id("FR"))],
            &[1.0],
            0,
            1,
        );
        let placement = Placement::geo_blind(world().len(), 1, &[1.0]);
        let report = PeakReport::analyze(&placement, &stream);
        assert_eq!(report.peak_origin(), 0);
        assert_eq!(report.peak_to_mean(), 0.0);
        assert!(stream.is_empty());
    }

    #[test]
    fn zero_amplitude_is_time_invariant() {
        let m = DiurnalModel {
            peak_local_hour: 20.0,
            amplitude: 0.0,
        };
        for h in 0..24 {
            assert!((m.activity(h as f64) - 1.0).abs() < 1e-12);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use tagdist_geo::world;

    proptest! {
        /// Activity stays within [1−a, 1+a] for any model and hour.
        #[test]
        fn activity_is_bounded(
            peak in 0.0f64..24.0, amplitude in 0.0f64..1.0, hour in 0.0f64..24.0
        ) {
            let m = DiurnalModel { peak_local_hour: peak, amplitude };
            let a = m.activity(hour);
            prop_assert!(a >= 1.0 - amplitude - 1e-9);
            prop_assert!(a <= 1.0 + amplitude + 1e-9);
        }

        /// Country activity equals plain activity at the shifted hour.
        #[test]
        fn country_activity_is_a_shift(
            utc in 0.0f64..24.0, country in 0usize..60
        ) {
            let m = DiurnalModel::default_2011();
            let id = tagdist_geo::CountryId::from_index(country);
            let local = (utc + world().country(id).utc_offset_hours).rem_euclid(24.0);
            let a = m.country_activity(world(), id, utc);
            let b = m.activity(local);
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
