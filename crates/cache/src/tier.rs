//! Two-tier cache hierarchy: country edges under regional parents.
//!
//! Production CDNs are hierarchical: a miss at the in-country edge is
//! served by a regional parent before anyone pays for an
//! inter-continental origin fetch. The hierarchy changes the placement
//! calculus — a *regional* tag (viewed across Latin America but in no
//! single country dominantly) is a poor edge-pin but a perfect parent
//! resident, which is exactly the "regional" class the locality
//! taxonomy of `tagdist-tags` identifies.

use core::fmt;

use tagdist_geo::{Region, World};

use crate::placement::Placement;
use crate::reactive::{LruCache, ReactiveCache};
use crate::request::RequestStream;

/// Outcome of a two-tier replay.
#[derive(Debug, Clone, PartialEq)]
pub struct TieredReport {
    /// Edge-placement name.
    pub policy: String,
    /// Requests replayed.
    pub requests: usize,
    /// Served by the in-country edge.
    pub edge_hits: usize,
    /// Served by the regional parent.
    pub regional_hits: usize,
    /// Served by the origin.
    pub origin_fetches: usize,
}

impl TieredReport {
    /// Fraction of requests that never left the hierarchy.
    pub fn hierarchy_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.edge_hits + self.regional_hits) as f64 / self.requests as f64
        }
    }

    /// Fraction served at the edge alone.
    pub fn edge_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.edge_hits as f64 / self.requests as f64
        }
    }
}

impl fmt::Display for TieredReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<16} edge {:>5.1}%, +regional {:>5.1}% → hierarchy {:>5.1}% ({} origin fetches)",
            self.policy,
            100.0 * self.edge_hit_rate(),
            100.0 * self.regional_hits as f64 / self.requests.max(1) as f64,
            100.0 * self.hierarchy_hit_rate(),
            self.origin_fetches
        )
    }
}

/// Replays a stream against static country edges backed by one
/// reactive LRU parent per [`Region`] with `regional_capacity` slots.
///
/// # Panics
///
/// Panics if the stream's countries exceed the world registry.
pub fn run_tiered(
    world: &World,
    edge: &Placement,
    regional_capacity: usize,
    stream: &RequestStream,
) -> TieredReport {
    assert!(
        stream.country_count() <= world.len(),
        "stream countries exceed the registry"
    );
    let region_index = |r: Region| r.index();
    let mut parents: Vec<LruCache> = Region::ALL
        .iter()
        .map(|_| LruCache::new(regional_capacity))
        .collect();

    let mut edge_hits = 0usize;
    let mut regional_hits = 0usize;
    let mut origin_fetches = 0usize;
    for r in stream.requests() {
        if edge.contains(r.country, r.video) {
            edge_hits += 1;
            continue;
        }
        let region = world.country(r.country).region;
        if parents[region_index(region)].access(r.video) {
            regional_hits += 1;
        } else {
            origin_fetches += 1;
        }
    }
    TieredReport {
        policy: edge.name().to_owned(),
        requests: stream.len(),
        edge_hits,
        regional_hits,
        origin_fetches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_geo::{world, CountryVec, GeoDist};

    fn id(code: &str) -> tagdist_geo::CountryId {
        world().by_code(code).unwrap().id
    }

    /// One video demanded equally from France and Germany (same
    /// region), another from Japan.
    fn stream(n: usize) -> RequestStream {
        let mut eu = CountryVec::zeros(world().len());
        eu[id("FR")] = 0.5;
        eu[id("DE")] = 0.5;
        let mut asia = CountryVec::zeros(world().len());
        asia[id("JP")] = 1.0;
        let dists = vec![
            GeoDist::from_counts(&eu).unwrap(),
            GeoDist::from_counts(&asia).unwrap(),
        ];
        RequestStream::generate(&dists, &[1.0, 1.0], n, 6)
    }

    fn empty_edges() -> Placement {
        Placement::from_scores("no-edge", world().len(), 2, 0, |_, _| 0.0)
    }

    #[test]
    fn regional_parent_absorbs_same_region_misses() {
        let report = run_tiered(world(), &empty_edges(), 4, &stream(2_000));
        assert_eq!(report.edge_hits, 0);
        // Each parent suffers one compulsory miss per video it serves:
        // EU parent for video 0, Asia parent for video 1.
        assert_eq!(report.origin_fetches, 2);
        assert_eq!(report.regional_hits, 1_998);
        assert!((report.hierarchy_hit_rate() - 0.999).abs() < 1e-3);
    }

    #[test]
    fn edge_hits_take_precedence() {
        // Every country caches video 0 (score>0 only for v0, capacity 1).
        let edge = Placement::from_scores("edge-v0", world().len(), 2, 1, |_, v| {
            if v == 0 {
                1.0
            } else {
                0.0
            }
        });
        let report = run_tiered(world(), &edge, 4, &stream(2_000));
        assert!(report.edge_hits > 0);
        // Video 1 (Japan) misses the edge but warms the Asia parent.
        assert_eq!(report.origin_fetches, 1);
        assert_eq!(
            report.requests,
            report.edge_hits + report.regional_hits + report.origin_fetches
        );
    }

    #[test]
    fn zero_parent_capacity_degrades_to_flat_edges() {
        let report = run_tiered(world(), &empty_edges(), 0, &stream(500));
        assert_eq!(report.regional_hits, 0);
        assert_eq!(report.origin_fetches, 500);
        assert_eq!(report.hierarchy_hit_rate(), 0.0);
    }

    #[test]
    fn parents_are_per_region_not_shared() {
        // With capacity 1 per parent, the EU parent holds video 0 and
        // the Asia parent holds video 1 — no cross-region eviction.
        let report = run_tiered(world(), &empty_edges(), 1, &stream(2_000));
        assert_eq!(report.origin_fetches, 2, "one compulsory miss per region");
    }

    #[test]
    fn display_reports_the_split() {
        let report = run_tiered(world(), &empty_edges(), 4, &stream(100));
        let text = report.to_string();
        assert!(text.contains("hierarchy"));
        assert!(text.contains("origin fetches"));
    }

    #[test]
    fn empty_stream_is_zero() {
        let report = run_tiered(world(), &empty_edges(), 4, &stream(0));
        assert_eq!(report.requests, 0);
        assert_eq!(report.hierarchy_hit_rate(), 0.0);
        assert_eq!(report.edge_hit_rate(), 0.0);
    }
}
