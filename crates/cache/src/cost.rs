//! Latency accounting — turning hit rates into user-visible cost.
//!
//! A hit rate says how often the origin was spared; operators and
//! users care about *where* misses land. This module replays a stream
//! against a static placement under a cooperative-CDN model:
//!
//! 1. local edge hit → in-country RTT,
//! 2. miss, but some other country's edge caches the video → RTT to
//!    the nearest such edge (cooperative fetch),
//! 3. cached nowhere → RTT to the origin country.
//!
//! The gap between a geo-blind and a tag-predictive placement under
//! this model is the latency value of the paper's proposal.

use core::fmt;

use tagdist_geo::{CountryId, LatencyModel, World};

use crate::placement::Placement;
use crate::request::RequestStream;

/// Latency outcome of replaying a stream against a placement.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Policy name (from the placement).
    pub policy: String,
    /// Requests replayed.
    pub requests: usize,
    /// Served by the local edge.
    pub local_hits: usize,
    /// Served by another country's edge (cooperative fetch).
    pub remote_hits: usize,
    /// Served by the origin.
    pub origin_fetches: usize,
    /// Mean RTT over all requests, in milliseconds.
    pub mean_rtt_ms: f64,
    /// Worst observed RTT, in milliseconds.
    pub max_rtt_ms: f64,
}

impl LatencyReport {
    /// Fraction of requests served locally.
    pub fn local_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.local_hits as f64 / self.requests as f64
        }
    }
}

impl fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} mean RTT {:>6.1} ms (local {:>5.1}%, remote {:>5.1}%, origin {:>5.1}%)",
            self.policy,
            self.mean_rtt_ms,
            100.0 * self.local_hits as f64 / self.requests.max(1) as f64,
            100.0 * self.remote_hits as f64 / self.requests.max(1) as f64,
            100.0 * self.origin_fetches as f64 / self.requests.max(1) as f64,
        )
    }
}

/// Replays `stream` against `placement` under the cooperative-CDN
/// latency model, with the origin hosted in `origin`.
///
/// For each video, the set of countries caching it is precomputed so
/// per-request work is a nearest-edge scan over that (typically short)
/// list.
pub fn run_with_latency(
    world: &World,
    latency: &LatencyModel,
    placement: &Placement,
    stream: &RequestStream,
    origin: CountryId,
) -> LatencyReport {
    // video → countries caching it.
    let mut holders: Vec<Vec<CountryId>> = vec![Vec::new(); stream.video_count()];
    for c in 0..placement.country_count() {
        let country = CountryId::from_index(c);
        for &video in placement.cached(country) {
            if video < holders.len() {
                holders[video].push(country);
            }
        }
    }

    let mut local_hits = 0usize;
    let mut remote_hits = 0usize;
    let mut origin_fetches = 0usize;
    let mut total_rtt = 0.0f64;
    let mut max_rtt = 0.0f64;
    for r in stream.requests() {
        let rtt = if placement.contains(r.country, r.video) {
            local_hits += 1;
            latency.rtt_ms(world, r.country, r.country)
        } else if let Some(edge) = latency.nearest(world, r.country, &holders[r.video]) {
            remote_hits += 1;
            latency.rtt_ms(world, r.country, edge)
        } else {
            origin_fetches += 1;
            latency.rtt_ms(world, r.country, origin)
        };
        total_rtt += rtt;
        if rtt > max_rtt {
            max_rtt = rtt;
        }
    }
    LatencyReport {
        policy: placement.name().to_owned(),
        requests: stream.len(),
        local_hits,
        remote_hits,
        origin_fetches,
        mean_rtt_ms: if stream.is_empty() {
            0.0
        } else {
            total_rtt / stream.len() as f64
        },
        max_rtt_ms: max_rtt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_geo::{world, CountryVec, GeoDist};

    fn id(code: &str) -> CountryId {
        world().by_code(code).unwrap().id
    }

    /// A stream of `n` requests, all from `from`, all for video 0 of a
    /// 1-video catalogue.
    fn stream_from(from: CountryId, n: usize) -> RequestStream {
        let mut counts = CountryVec::zeros(world().len());
        counts[from] = 1.0;
        let dist = GeoDist::from_counts(&counts).unwrap();
        RequestStream::generate(&[dist], &[1.0], n, 3)
    }

    fn placement_holding(countries: &[CountryId]) -> Placement {
        let held: std::collections::HashSet<usize> = countries.iter().map(|c| c.index()).collect();
        Placement::from_scores("held", world().len(), 1, 1, |c, _| {
            if held.contains(&c.index()) {
                1.0
            } else {
                // Negative score still places the video (capacity 1,
                // catalogue 1); use from_scores' top-k honestly
                // instead: score 0 everywhere else would still cache
                // it. So we must express "not cached" via capacity…
                0.0
            }
        })
    }

    #[test]
    fn local_hit_is_local_rtt() {
        let fr = id("FR");
        let latency = LatencyModel::default_2011();
        // Every country caches video 0 (capacity 1, catalogue 1).
        let placement = placement_holding(&[fr]);
        let stream = stream_from(fr, 100);
        let report = run_with_latency(world(), &latency, &placement, &stream, id("US"));
        assert_eq!(report.local_hits, 100);
        assert_eq!(report.mean_rtt_ms, latency.local_ms());
        assert_eq!(report.max_rtt_ms, latency.local_ms());
        assert!((report.local_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_is_zeroes() {
        let fr = id("FR");
        let latency = LatencyModel::default_2011();
        let placement = placement_holding(&[fr]);
        let stream = stream_from(fr, 0);
        let report = run_with_latency(world(), &latency, &placement, &stream, id("US"));
        assert_eq!(report.mean_rtt_ms, 0.0);
        assert_eq!(report.local_rate(), 0.0);
    }

    /// Build a placement where only selected countries cache the one
    /// video, using per-country capacities via zero capacity trick.
    fn exclusive_placement(countries: &[CountryId]) -> Placement {
        // Catalogue of 2: video 0 is the real one, video 1 a decoy
        // that non-holders cache instead.
        let held: std::collections::HashSet<usize> = countries.iter().map(|c| c.index()).collect();
        Placement::from_scores("exclusive", world().len(), 2, 1, |c, v| {
            let holds = held.contains(&c.index());
            match (holds, v) {
                (true, 0) => 1.0,
                (false, 1) => 1.0,
                _ => 0.0,
            }
        })
    }

    fn stream2_from(from: CountryId, n: usize) -> RequestStream {
        let mut counts = CountryVec::zeros(world().len());
        counts[from] = 1.0;
        let dist = GeoDist::from_counts(&counts).unwrap();
        RequestStream::generate(&[dist.clone(), dist], &[1.0, 0.0], n, 3)
    }

    #[test]
    fn cooperative_fetch_goes_to_nearest_holder() {
        let fr = id("FR");
        let de = id("DE");
        let jp = id("JP");
        let latency = LatencyModel::default_2011();
        let placement = exclusive_placement(&[de, jp]);
        let stream = stream2_from(fr, 50);
        let report = run_with_latency(world(), &latency, &placement, &stream, id("US"));
        assert_eq!(report.remote_hits, 50);
        assert_eq!(report.local_hits, 0);
        // Nearest holder for FR is DE (same region).
        assert_eq!(report.mean_rtt_ms, latency.rtt_ms(world(), fr, de));
    }

    #[test]
    fn uncached_video_pays_origin_rtt() {
        let fr = id("FR");
        let latency = LatencyModel::default_2011();
        let placement = exclusive_placement(&[]); // nobody holds video 0
        let stream = stream2_from(fr, 25);
        let report = run_with_latency(world(), &latency, &placement, &stream, id("US"));
        assert_eq!(report.origin_fetches, 25);
        assert_eq!(report.mean_rtt_ms, latency.rtt_ms(world(), fr, id("US")));
        assert_eq!(report.max_rtt_ms, report.mean_rtt_ms);
    }

    #[test]
    fn display_shows_the_split() {
        let fr = id("FR");
        let latency = LatencyModel::default_2011();
        let placement = placement_holding(&[fr]);
        let stream = stream_from(fr, 10);
        let report = run_with_latency(world(), &latency, &placement, &stream, id("US"));
        let text = report.to_string();
        assert!(text.contains("mean RTT"));
        assert!(text.contains("local 100.0%"));
    }
}
