//! Request-stream generation.
//!
//! The simulator needs a stream of "user in country *c* requests video
//! *v*" events whose statistics match the corpus: videos are drawn
//! proportionally to their total views, and the requesting country
//! from the video's geographic view distribution. With ground-truth
//! distributions this reproduces the platform's true demand; with
//! reconstructed distributions it reproduces the demand *as the
//! paper's pipeline sees it*.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tagdist_geo::{CountryId, GeoDist};

/// One cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Index of the requested video (into the distribution slice the
    /// stream was generated from).
    pub video: usize,
    /// Country the request originates from.
    pub country: CountryId,
}

/// A deterministic, pre-materialized request stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestStream {
    requests: Vec<Request>,
    video_count: usize,
    country_count: usize,
}

impl RequestStream {
    /// Generates `n` requests.
    ///
    /// * `dists[v]` — per-video geographic view distribution,
    /// * `weights[v]` — per-video request weight (total views).
    ///
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `dists` and `weights` differ in length, are empty,
    /// contain non-finite/negative weights, carry zero total weight,
    /// or if the distributions disagree on the world size.
    pub fn generate(dists: &[GeoDist], weights: &[f64], n: usize, seed: u64) -> RequestStream {
        assert_eq!(dists.len(), weights.len(), "one weight per distribution");
        assert!(!dists.is_empty(), "need at least one video");
        let country_count = dists[0].len();
        assert!(
            dists.iter().all(|d| d.len() == country_count),
            "distributions must cover the same world"
        );
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );

        // Cumulative weights for O(log n) video sampling.
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w;
            cdf.push(acc);
        }
        let total = acc;
        assert!(total > 0.0, "total request weight must be positive");

        let mut rng = StdRng::seed_from_u64(seed);
        let requests = (0..n)
            .map(|_| {
                let u: f64 = rng.gen::<f64>() * total;
                let video = match cdf.binary_search_by(|c| c.total_cmp(&u)) {
                    Ok(i) | Err(i) => i.min(cdf.len() - 1),
                };
                let country = dists[video].sample(&mut rng);
                Request { video, country }
            })
            .collect();
        RequestStream {
            requests,
            video_count: dists.len(),
            country_count,
        }
    }

    /// The requests in generation order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` for a zero-length stream.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of videos in the catalogue the stream draws from.
    pub fn video_count(&self) -> usize {
        self.video_count
    }

    /// World size of the originating countries.
    pub fn country_count(&self) -> usize {
        self.country_count
    }

    /// Requests per country (diagnostics / load sizing).
    pub fn per_country_load(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.country_count];
        for r in &self.requests {
            load[r.country.index()] += 1;
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_geo::CountryVec;

    fn d(values: &[f64]) -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(values.to_vec())).unwrap()
    }

    #[test]
    fn stream_has_requested_length_and_ranges() {
        let dists = vec![d(&[1.0, 1.0]), d(&[1.0, 0.0])];
        let s = RequestStream::generate(&dists, &[1.0, 1.0], 500, 42);
        assert_eq!(s.len(), 500);
        assert_eq!(s.video_count(), 2);
        assert_eq!(s.country_count(), 2);
        for r in s.requests() {
            assert!(r.video < 2);
            assert!(r.country.index() < 2);
        }
    }

    #[test]
    fn weights_drive_video_popularity() {
        let dists = vec![d(&[1.0]), d(&[1.0])];
        let s = RequestStream::generate(&dists, &[9.0, 1.0], 10_000, 7);
        let v0 = s.requests().iter().filter(|r| r.video == 0).count();
        let share = v0 as f64 / s.len() as f64;
        assert!((share - 0.9).abs() < 0.02, "video-0 share {share}");
    }

    #[test]
    fn countries_follow_video_distributions() {
        let dists = vec![d(&[0.2, 0.8])];
        let s = RequestStream::generate(&dists, &[1.0], 10_000, 7);
        let c1 = s
            .requests()
            .iter()
            .filter(|r| r.country.index() == 1)
            .count();
        let share = c1 as f64 / s.len() as f64;
        assert!((share - 0.8).abs() < 0.02, "country-1 share {share}");
    }

    #[test]
    fn generation_is_deterministic() {
        let dists = vec![d(&[0.5, 0.5]), d(&[1.0, 0.0])];
        let a = RequestStream::generate(&dists, &[1.0, 2.0], 100, 3);
        let b = RequestStream::generate(&dists, &[1.0, 2.0], 100, 3);
        assert_eq!(a, b);
        let c = RequestStream::generate(&dists, &[1.0, 2.0], 100, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_weight_videos_are_never_requested() {
        let dists = vec![d(&[1.0]), d(&[1.0])];
        let s = RequestStream::generate(&dists, &[0.0, 1.0], 1_000, 1);
        assert!(s.requests().iter().all(|r| r.video == 1));
    }

    #[test]
    fn per_country_load_sums_to_len() {
        let dists = vec![d(&[0.3, 0.3, 0.4])];
        let s = RequestStream::generate(&dists, &[1.0], 777, 5);
        assert_eq!(s.per_country_load().iter().sum::<usize>(), 777);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_panic() {
        let dists = vec![d(&[1.0])];
        let _ = RequestStream::generate(&dists, &[0.0], 10, 1);
    }

    #[test]
    #[should_panic(expected = "one weight per distribution")]
    fn mismatched_inputs_panic() {
        let dists = vec![d(&[1.0])];
        let _ = RequestStream::generate(&dists, &[1.0, 2.0], 10, 1);
    }

    #[test]
    fn empty_stream_is_fine() {
        let dists = vec![d(&[1.0])];
        let s = RequestStream::generate(&dists, &[1.0], 0, 1);
        assert!(s.is_empty());
    }
}
