//! Hybrid caching: proactive pinning plus a reactive remainder.
//!
//! A real deployment would not bet the whole cache on predictions: it
//! pins the predicted-local head of the catalogue and lets an LRU
//! manage the rest of the capacity. This is the deployment-shaped
//! variant of the paper's proposal, and the ablation that shows how
//! much of the proactive win survives contact with a reactive tail.

use std::collections::HashSet;

use crate::placement::Placement;
use crate::reactive::{LruCache, ReactiveCache};
use crate::report::CacheReport;
use crate::request::RequestStream;

/// One country's hybrid cache: a pinned (static) set plus an LRU for
/// the remaining capacity.
///
/// # Example
///
/// ```
/// use tagdist_cache::{HybridCache, ReactiveCache};
///
/// let mut cache = HybridCache::new([42usize].into_iter().collect(), 2);
/// assert!(cache.access(42), "pinned content hits even cold");
/// assert!(!cache.access(7), "the reactive tail warms up normally");
/// ```
#[derive(Debug, Clone)]
pub struct HybridCache {
    pinned: HashSet<usize>,
    lru: LruCache,
}

impl HybridCache {
    /// Creates a hybrid cache. `pinned` contents never churn; the LRU
    /// gets `lru_capacity` additional slots.
    pub fn new(pinned: HashSet<usize>, lru_capacity: usize) -> HybridCache {
        HybridCache {
            pinned,
            lru: LruCache::new(lru_capacity),
        }
    }

    /// Number of pinned objects.
    pub fn pinned_len(&self) -> usize {
        self.pinned.len()
    }
}

impl ReactiveCache for HybridCache {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn access(&mut self, video: usize) -> bool {
        if self.pinned.contains(&video) {
            return true;
        }
        self.lru.access(video)
    }

    fn len(&self) -> usize {
        self.pinned.len() + self.lru.len()
    }

    fn contains(&self, video: usize) -> bool {
        self.pinned.contains(&video) || self.lru.contains(video)
    }
}

/// Replays a stream against per-country hybrid caches.
///
/// `placement` provides the pinned sets (its capacity is the pinned
/// budget); `lru_capacity` is the extra reactive budget per country.
/// The report's `capacity` field is the combined per-country budget.
pub fn run_hybrid(
    placement: &Placement,
    lru_capacity: usize,
    stream: &RequestStream,
) -> CacheReport {
    let countries = stream.country_count().max(placement.country_count());
    let mut caches: Vec<HybridCache> = (0..countries)
        .map(|c| {
            let pinned = if c < placement.country_count() {
                placement
                    .cached(tagdist_geo::CountryId::from_index(c))
                    .clone()
            } else {
                HashSet::new()
            };
            HybridCache::new(pinned, lru_capacity)
        })
        .collect();

    let mut hits_per_country = vec![0usize; countries];
    let mut requests_per_country = vec![0usize; countries];
    let mut hits = 0usize;
    for r in stream.requests() {
        let idx = r.country.index();
        requests_per_country[idx] += 1;
        if caches[idx].access(r.video) {
            hits += 1;
            hits_per_country[idx] += 1;
        }
    }
    CacheReport {
        policy: format!("hybrid({}+lru{})", placement.name(), lru_capacity),
        capacity: placement.capacity() + lru_capacity,
        requests: stream.len(),
        hits,
        hits_per_country,
        requests_per_country,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run_reactive, run_static};
    use tagdist_geo::{CountryVec, GeoDist};

    fn d(values: &[f64]) -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(values.to_vec())).unwrap()
    }

    #[test]
    fn pinned_objects_always_hit() {
        let mut c = HybridCache::new([7usize].into_iter().collect(), 1);
        assert!(c.access(7), "pinned content hits cold");
        assert!(!c.access(3), "unpinned content misses cold");
        assert!(c.access(3), "then lives in the LRU");
        assert_eq!(c.pinned_len(), 1);
        assert!(c.contains(7) && c.contains(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.name(), "hybrid");
    }

    #[test]
    fn pinned_objects_never_evict() {
        let mut c = HybridCache::new([0usize].into_iter().collect(), 2);
        for i in 1..100 {
            c.access(i);
        }
        assert!(c.access(0), "pin survives arbitrary churn");
        assert!(c.len() <= 3);
    }

    /// Hybrid ≥ pure static and ≥ pure LRU on a head+tail workload.
    #[test]
    fn hybrid_dominates_both_parents() {
        // Head: videos 0/1 perfectly predicted per country. Tail:
        // videos 2..6 requested with temporal locality the static
        // placement cannot see.
        let dists = vec![
            d(&[1.0, 0.0]),
            d(&[0.0, 1.0]),
            d(&[0.6, 0.4]),
            d(&[0.4, 0.6]),
            d(&[0.5, 0.5]),
            d(&[0.5, 0.5]),
        ];
        let weights = [10.0, 10.0, 2.0, 2.0, 2.0, 2.0];
        let stream = RequestStream::generate(&dists, &weights, 6_000, 21);

        let placement = crate::placement::Placement::predictive("tags", 2, 1, &dists, &weights);
        let static_only = run_static(&placement, &stream);
        let lru_only = run_reactive(|| LruCache::new(2), 2, &stream);
        let hybrid = run_hybrid(&placement, 1, &stream);

        assert!(
            hybrid.hit_rate() >= static_only.hit_rate(),
            "hybrid {} vs static {}",
            hybrid.hit_rate(),
            static_only.hit_rate()
        );
        assert!(
            hybrid.hit_rate() > lru_only.hit_rate() - 0.02,
            "hybrid {} vs lru {}",
            hybrid.hit_rate(),
            lru_only.hit_rate()
        );
        assert!(hybrid.policy.contains("hybrid"));
        assert_eq!(hybrid.capacity, 2);
    }

    #[test]
    fn accounting_is_consistent() {
        let dists = vec![d(&[0.5, 0.5]), d(&[0.5, 0.5])];
        let stream = RequestStream::generate(&dists, &[1.0, 1.0], 500, 2);
        let placement = crate::placement::Placement::geo_blind(2, 1, &[1.0, 1.0]);
        let report = run_hybrid(&placement, 1, &stream);
        assert_eq!(
            report.requests_per_country.iter().sum::<usize>(),
            report.requests
        );
        assert_eq!(report.hits_per_country.iter().sum::<usize>(), report.hits);
    }

    #[test]
    fn zero_lru_budget_reduces_to_static() {
        let dists = vec![d(&[1.0, 0.0]), d(&[0.0, 1.0])];
        let weights = [1.0, 1.0];
        let stream = RequestStream::generate(&dists, &weights, 2_000, 9);
        let placement = crate::placement::Placement::predictive("p", 2, 1, &dists, &weights);
        let hybrid = run_hybrid(&placement, 0, &stream);
        let static_only = run_static(&placement, &stream);
        assert_eq!(hybrid.hits, static_only.hits);
    }
}
