//! Proactive geographic caching — the application the paper sketches
//! as the payoff of knowing tags' geographic distributions:
//!
//! > “tags might help implement a form of proactive geographic
//! > caching, i.e. predicting where a video will be consumed, based on
//! > the geographic study of its embodied tags, an avenue we plan to
//! > investigate in our future research.”
//!
//! This crate is that future-work section, built: a per-country
//! edge-cache simulator with
//!
//! * a deterministic [`RequestStream`] generator drawing (video,
//!   country) pairs from per-video geographic view distributions,
//! * **proactive** (static) placements computed from any per-video
//!   country score — tag-predicted distributions, global popularity
//!   (geo-blind), ground truth (oracle), or random ([`Placement`]),
//! * **reactive** per-country caches — [`LruCache`] and [`LfuCache`] —
//!   that only learn from the requests they see,
//! * hit-rate accounting per policy and per country
//!   ([`CacheReport`]).
//!
//! Experiment E7 (DESIGN.md) sweeps cache capacity and compares the
//! five policies; the expected shape is oracle ≥ tag-proactive >
//! geo-blind ≥ random, with reactive policies in between depending on
//! stream length.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod cost;
pub mod diurnal;
pub mod hybrid;
pub mod placement;
pub mod reactive;
pub mod report;
pub mod request;
pub mod sim;
pub mod sizes;
pub mod tier;

pub use cost::{run_with_latency, LatencyReport};
pub use diurnal::{DiurnalModel, PeakReport, TimedRequest, TimedRequestStream};
pub use hybrid::{run_hybrid, HybridCache};
pub use placement::Placement;
pub use reactive::{LfuCache, LruCache, ReactiveCache, SlruCache};
pub use report::CacheReport;
pub use request::{Request, RequestStream};
pub use sim::{run_reactive, run_reactive_obs, run_static, run_static_obs};
pub use sizes::{run_static_sized, ByteReport, SizedPlacement};
pub use tier::{run_tiered, TieredReport};
