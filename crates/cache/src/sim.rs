//! The simulation drivers.

use tagdist_obs::SpanGuard;

use crate::placement::Placement;
use crate::reactive::ReactiveCache;
use crate::report::CacheReport;
use crate::request::RequestStream;

/// Replays a stream against a static (proactive) placement.
///
/// Proactive caches do not change during the run: the placement was
/// decided ahead of time from predictions, which is exactly the
/// deployment model the paper sketches.
pub fn run_static(placement: &Placement, stream: &RequestStream) -> CacheReport {
    run_static_obs(placement, stream, &SpanGuard::disabled())
}

/// [`run_static`], instrumented: opens a `cache.{policy}` child span
/// of `parent` over the request loop and records the simulation's
/// deterministic counters (`cache.requests`, `.hits`, `.misses` —
/// functions of the stream and the placement alone).
pub fn run_static_obs(
    placement: &Placement,
    stream: &RequestStream,
    parent: &SpanGuard,
) -> CacheReport {
    let span = parent.child(&format!("cache.{}", placement.name()));
    let countries = stream.country_count().max(placement.country_count());
    let mut hits_per_country = vec![0usize; countries];
    let mut requests_per_country = vec![0usize; countries];
    let mut hits = 0usize;
    for r in stream.requests() {
        requests_per_country[r.country.index()] += 1;
        if placement.contains(r.country, r.video) {
            hits += 1;
            hits_per_country[r.country.index()] += 1;
        }
    }
    let obs = span.recorder();
    obs.add("cache.requests", stream.len() as u64);
    obs.add("cache.hits", hits as u64);
    obs.add("cache.misses", (stream.len() - hits) as u64);
    CacheReport {
        policy: placement.name().to_owned(),
        capacity: placement.capacity(),
        requests: stream.len(),
        hits,
        hits_per_country,
        requests_per_country,
    }
}

/// Replays a stream against per-country reactive caches created by
/// `make_cache` (e.g. `|| LruCache::new(capacity)`).
pub fn run_reactive<C, F>(make_cache: F, capacity: usize, stream: &RequestStream) -> CacheReport
where
    C: ReactiveCache,
    F: FnMut() -> C,
{
    run_reactive_obs(make_cache, capacity, stream, &SpanGuard::disabled())
}

/// [`run_reactive`], instrumented: opens a `cache.{policy}` child span
/// of `parent` over the request loop and records `cache.requests`,
/// `.hits` and `.misses`, exactly as [`run_static_obs`] does.
pub fn run_reactive_obs<C, F>(
    mut make_cache: F,
    capacity: usize,
    stream: &RequestStream,
    parent: &SpanGuard,
) -> CacheReport
where
    C: ReactiveCache,
    F: FnMut() -> C,
{
    let countries = stream.country_count();
    let mut caches: Vec<C> = (0..countries).map(|_| make_cache()).collect();
    let name = caches
        .first()
        .map(|c| c.name())
        .unwrap_or("reactive")
        .to_owned();
    let span = parent.child(&format!("cache.{name}"));
    let mut hits_per_country = vec![0usize; countries];
    let mut requests_per_country = vec![0usize; countries];
    let mut hits = 0usize;
    for r in stream.requests() {
        let idx = r.country.index();
        requests_per_country[idx] += 1;
        if caches[idx].access(r.video) {
            hits += 1;
            hits_per_country[idx] += 1;
        }
    }
    let obs = span.recorder();
    obs.add("cache.requests", stream.len() as u64);
    obs.add("cache.hits", hits as u64);
    obs.add("cache.misses", (stream.len() - hits) as u64);
    CacheReport {
        policy: name,
        capacity,
        requests: stream.len(),
        hits,
        hits_per_country,
        requests_per_country,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactive::{LfuCache, LruCache};
    use tagdist_geo::{CountryVec, GeoDist};

    fn d(values: &[f64]) -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(values.to_vec())).unwrap()
    }

    /// Two countries, two perfectly local videos.
    fn polarized_stream(n: usize) -> RequestStream {
        let dists = vec![d(&[1.0, 0.0]), d(&[0.0, 1.0])];
        RequestStream::generate(&dists, &[1.0, 1.0], n, 11)
    }

    #[test]
    fn oracle_placement_hits_everything() {
        let stream = polarized_stream(1_000);
        let dists = vec![d(&[1.0, 0.0]), d(&[0.0, 1.0])];
        let oracle = Placement::predictive("oracle", 2, 1, &dists, &[1.0, 1.0]);
        let report = run_static(&oracle, &stream);
        assert_eq!(report.hits, 1_000);
        assert_eq!(report.hit_rate(), 1.0);
        assert_eq!(report.origin_fetches(), 0);
    }

    #[test]
    fn wrong_placement_hits_nothing() {
        let stream = polarized_stream(500);
        // Swap the videos: each country caches the other's video.
        let swapped = vec![d(&[0.0, 1.0]), d(&[1.0, 0.0])];
        let bad = Placement::predictive("swapped", 2, 1, &swapped, &[1.0, 1.0]);
        let report = run_static(&bad, &stream);
        assert_eq!(report.hits, 0);
    }

    #[test]
    fn geo_blind_needs_double_capacity_for_local_demand() {
        let stream = polarized_stream(2_000);
        let blind1 = Placement::geo_blind(2, 1, &[1.0, 1.0]);
        let r1 = run_static(&blind1, &stream);
        // Caches the same single video everywhere → ~50 % hit rate.
        assert!((r1.hit_rate() - 0.5).abs() < 0.05, "{}", r1.hit_rate());
        let blind2 = Placement::geo_blind(2, 2, &[1.0, 1.0]);
        let r2 = run_static(&blind2, &stream);
        assert_eq!(r2.hit_rate(), 1.0);
    }

    #[test]
    fn reactive_caches_warm_up() {
        let stream = polarized_stream(1_000);
        let report = run_reactive(|| LruCache::new(1), 1, &stream);
        assert_eq!(report.policy, "lru");
        // One compulsory miss per country, then hits forever.
        assert_eq!(report.origin_fetches(), 2);
        let lfu = run_reactive(|| LfuCache::new(1), 1, &stream);
        assert_eq!(lfu.origin_fetches(), 2);
        assert_eq!(lfu.policy, "lfu");
    }

    #[test]
    fn per_country_accounting_sums_up() {
        let stream = polarized_stream(400);
        let report = run_reactive(|| LruCache::new(1), 1, &stream);
        assert_eq!(
            report.requests_per_country.iter().sum::<usize>(),
            report.requests
        );
        assert_eq!(report.hits_per_country.iter().sum::<usize>(), report.hits);
    }

    #[test]
    fn empty_stream_reports_zero() {
        let stream = polarized_stream(0);
        let placement = Placement::geo_blind(2, 1, &[1.0, 1.0]);
        let report = run_static(&placement, &stream);
        assert_eq!(report.requests, 0);
        assert_eq!(report.hit_rate(), 0.0);
        let reactive = run_reactive(|| LruCache::new(1), 1, &stream);
        assert_eq!(reactive.requests, 0);
    }

    /// The headline E7 shape on a miniature world: oracle ≥ predictive
    /// > geo-blind, random worst.
    #[test]
    fn policy_ordering_matches_expectations() {
        // Four videos: two local to country 0, two local to country 1;
        // noisy predictions still rank the right videos first.
        let truth = vec![
            d(&[0.9, 0.1]),
            d(&[0.8, 0.2]),
            d(&[0.1, 0.9]),
            d(&[0.2, 0.8]),
        ];
        let predicted = vec![
            d(&[0.7, 0.3]),
            d(&[0.6, 0.4]),
            d(&[0.3, 0.7]),
            d(&[0.4, 0.6]),
        ];
        let weights = [4.0, 3.0, 4.0, 3.0];
        let stream = RequestStream::generate(&truth, &weights, 4_000, 5);

        let oracle = run_static(
            &Placement::predictive("oracle", 2, 2, &truth, &weights),
            &stream,
        );
        let tags = run_static(
            &Placement::predictive("tag-proactive", 2, 2, &predicted, &weights),
            &stream,
        );
        let blind = run_static(&Placement::geo_blind(2, 2, &weights), &stream);
        let random = run_static(&Placement::random(2, 4, 2, 99), &stream);

        assert!(oracle.hit_rate() >= tags.hit_rate());
        assert!(
            tags.hit_rate() > blind.hit_rate(),
            "tags {} vs blind {}",
            tags.hit_rate(),
            blind.hit_rate()
        );
        assert!(random.hit_rate() <= tags.hit_rate());
    }
}
