//! Simulation accounting.

use core::fmt;

/// Outcome of simulating one policy against one request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheReport {
    /// Policy name.
    pub policy: String,
    /// Per-country cache capacity used.
    pub capacity: usize,
    /// Total requests processed.
    pub requests: usize,
    /// Requests served from the local edge cache.
    pub hits: usize,
    /// Hits per country (index = dense country id).
    pub hits_per_country: Vec<usize>,
    /// Requests per country.
    pub requests_per_country: Vec<usize>,
}

impl CacheReport {
    /// Overall hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }

    /// Requests that had to be served by the origin.
    pub fn origin_fetches(&self) -> usize {
        self.requests - self.hits
    }

    /// Hit rate of one country, or `None` if it received no requests.
    pub fn country_hit_rate(&self, country: usize) -> Option<f64> {
        let req = *self.requests_per_country.get(country)?;
        if req == 0 {
            return None;
        }
        Some(self.hits_per_country[country] as f64 / req as f64)
    }
}

impl fmt::Display for CacheReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<14} capacity {:>6}: {:>8}/{} hits ({:>5.1}%), {} origin fetches",
            self.policy,
            self.capacity,
            self.hits,
            self.requests,
            100.0 * self.hit_rate(),
            self.origin_fetches()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CacheReport {
        CacheReport {
            policy: "test".into(),
            capacity: 10,
            requests: 100,
            hits: 40,
            hits_per_country: vec![30, 10, 0],
            requests_per_country: vec![50, 50, 0],
        }
    }

    #[test]
    fn rates_and_origin() {
        let r = report();
        assert!((r.hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(r.origin_fetches(), 60);
        assert_eq!(r.country_hit_rate(0), Some(0.6));
        assert_eq!(r.country_hit_rate(1), Some(0.2));
        assert_eq!(r.country_hit_rate(2), None, "no requests");
        assert_eq!(r.country_hit_rate(9), None, "out of range");
    }

    #[test]
    fn empty_report_is_zero() {
        let r = CacheReport {
            policy: "none".into(),
            capacity: 0,
            requests: 0,
            hits: 0,
            hits_per_country: vec![],
            requests_per_country: vec![],
        };
        assert_eq!(r.hit_rate(), 0.0);
        assert_eq!(r.origin_fetches(), 0);
    }

    #[test]
    fn display_has_the_essentials() {
        let text = report().to_string();
        assert!(text.contains("test"));
        assert!(text.contains("40.0%"));
        assert!(text.contains("60 origin"));
    }
}
