//! Size-aware placement and byte accounting.
//!
//! Real edge caches are provisioned in bytes, and video sizes span
//! two orders of magnitude (a music clip vs a concert recording).
//! Under a byte budget the optimal proactive placement is not the
//! top-K by score but the classic knapsack-greedy by *score density*
//! (expected local views per byte): many small locally-hot videos can
//! out-serve one giant hit.

use std::collections::HashSet;

use tagdist_geo::{CountryId, GeoDist};

use crate::request::RequestStream;

/// A static per-country placement under a byte budget.
///
/// # Example
///
/// ```
/// use tagdist_cache::SizedPlacement;
/// use tagdist_geo::CountryId;
///
/// // Budget 10: three dense small videos beat one big one.
/// let sizes = [10.0, 3.0, 3.0, 3.0];
/// let scores = [10.0, 4.0, 4.0, 4.0];
/// let p = SizedPlacement::greedy("demo", 1, 10.0, &sizes, |_, v| scores[v]);
/// assert!(!p.contains(CountryId::from_index(0), 0));
/// assert!(p.contains(CountryId::from_index(0), 1));
/// ```
#[derive(Debug, Clone)]
pub struct SizedPlacement {
    name: String,
    per_country: Vec<HashSet<usize>>,
    byte_capacity: f64,
}

impl SizedPlacement {
    /// Greedy knapsack placement: each country caches videos in
    /// descending `score(country, video) / size` density until the
    /// byte budget is exhausted (videos larger than the remaining
    /// budget are skipped, letting smaller ones fill the gap).
    ///
    /// # Panics
    ///
    /// Panics if any size is non-positive or not finite.
    pub fn greedy<F>(
        name: impl Into<String>,
        country_count: usize,
        byte_capacity: f64,
        sizes: &[f64],
        mut score: F,
    ) -> SizedPlacement
    where
        F: FnMut(CountryId, usize) -> f64,
    {
        assert!(
            sizes.iter().all(|s| s.is_finite() && *s > 0.0),
            "sizes must be positive"
        );
        let per_country = (0..country_count)
            .map(|c| {
                let country = CountryId::from_index(c);
                let mut ranked: Vec<usize> = (0..sizes.len()).collect();
                let densities: Vec<f64> = (0..sizes.len())
                    .map(|v| score(country, v) / sizes[v])
                    .collect();
                ranked.sort_by(|&a, &b| densities[b].total_cmp(&densities[a]).then(a.cmp(&b)));
                let mut set = HashSet::new();
                let mut used = 0.0;
                for v in ranked {
                    if densities[v] <= 0.0 {
                        break;
                    }
                    if used + sizes[v] <= byte_capacity {
                        used += sizes[v];
                        set.insert(v);
                    }
                }
                set
            })
            .collect();
        SizedPlacement {
            name: name.into(),
            per_country,
            byte_capacity,
        }
    }

    /// Size-aware tag-predictive placement:
    /// density = `predicted[v].prob(c)·weight[v] / size[v]`.
    ///
    /// # Panics
    ///
    /// Panics if the slices disagree in length or sizes are invalid.
    pub fn predictive_sized(
        name: impl Into<String>,
        country_count: usize,
        byte_capacity: f64,
        predicted: &[GeoDist],
        weights: &[f64],
        sizes: &[f64],
    ) -> SizedPlacement {
        assert_eq!(predicted.len(), weights.len());
        assert_eq!(predicted.len(), sizes.len());
        SizedPlacement::greedy(name, country_count, byte_capacity, sizes, |c, v| {
            predicted[v].prob(c) * weights[v]
        })
    }

    /// Policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Byte budget per country.
    pub fn byte_capacity(&self) -> f64 {
        self.byte_capacity
    }

    /// Returns `true` if `video` is cached in `country`.
    pub fn contains(&self, country: CountryId, video: usize) -> bool {
        self.per_country
            .get(country.index())
            .is_some_and(|set| set.contains(&video))
    }

    /// Bytes actually pinned in one country.
    ///
    /// # Panics
    ///
    /// Panics if `country` is out of range or `sizes` is shorter than
    /// a cached index.
    pub fn bytes_used(&self, country: CountryId, sizes: &[f64]) -> f64 {
        self.per_country[country.index()]
            .iter()
            .map(|&v| sizes[v])
            .sum()
    }
}

/// Byte-level outcome of a sized replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ByteReport {
    /// Policy name.
    pub policy: String,
    /// Requests replayed.
    pub requests: usize,
    /// Requests served locally.
    pub hits: usize,
    /// Total bytes requested.
    pub bytes_requested: f64,
    /// Bytes that had to come from the origin.
    pub bytes_from_origin: f64,
}

impl ByteReport {
    /// Byte hit rate — the CDN operator's billing metric.
    pub fn byte_hit_rate(&self) -> f64 {
        if self.bytes_requested <= 0.0 {
            0.0
        } else {
            1.0 - self.bytes_from_origin / self.bytes_requested
        }
    }

    /// Request hit rate, for comparison with unit-size results.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

/// Replays a stream against a sized placement, accounting bytes.
///
/// # Panics
///
/// Panics if `sizes` does not cover the stream's catalogue.
pub fn run_static_sized(
    placement: &SizedPlacement,
    stream: &RequestStream,
    sizes: &[f64],
) -> ByteReport {
    assert!(
        sizes.len() >= stream.video_count(),
        "sizes cover the catalogue"
    );
    let mut hits = 0usize;
    let mut bytes_requested = 0.0;
    let mut bytes_from_origin = 0.0;
    for r in stream.requests() {
        let size = sizes[r.video];
        bytes_requested += size;
        if placement.contains(r.country, r.video) {
            hits += 1;
        } else {
            bytes_from_origin += size;
        }
    }
    ByteReport {
        policy: placement.name().to_owned(),
        requests: stream.len(),
        hits,
        bytes_requested,
        bytes_from_origin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_geo::CountryVec;

    fn d(values: &[f64]) -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(values.to_vec())).unwrap()
    }

    fn c(i: usize) -> CountryId {
        CountryId::from_index(i)
    }

    #[test]
    fn greedy_prefers_dense_videos() {
        // Budget 10: one giant video (score 10, size 10) vs three
        // small ones (score 4 each, size 3). Density favours small.
        let sizes = [10.0, 3.0, 3.0, 3.0];
        let scores = [10.0, 4.0, 4.0, 4.0];
        let p = SizedPlacement::greedy("dense", 1, 10.0, &sizes, |_, v| scores[v]);
        assert!(!p.contains(c(0), 0), "giant skipped");
        for v in 1..4 {
            assert!(p.contains(c(0), v), "small video {v} cached");
        }
        assert!((p.bytes_used(c(0), &sizes) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn budget_is_respected_with_gap_filling() {
        // Ranked by density: v0 (4), v1 (3), v2 (2). Budget 6 fits v0
        // and v2 (v1 is skipped, the smaller v2 fills the gap).
        let sizes = [4.0, 3.0, 2.0];
        let scores = [40.0, 24.0, 10.0];
        let p = SizedPlacement::greedy("gap", 1, 6.0, &sizes, |_, v| scores[v]);
        assert!(p.contains(c(0), 0));
        assert!(!p.contains(c(0), 1));
        assert!(p.contains(c(0), 2));
        assert!(p.bytes_used(c(0), &sizes) <= 6.0);
    }

    #[test]
    fn zero_scores_are_never_cached() {
        let sizes = [1.0, 1.0];
        let p = SizedPlacement::greedy("z", 1, 10.0, &sizes, |_, v| if v == 0 { 1.0 } else { 0.0 });
        assert!(p.contains(c(0), 0));
        assert!(!p.contains(c(0), 1));
    }

    #[test]
    fn byte_accounting_matches_hand_computation() {
        let sizes = [2.0, 8.0];
        let dists = vec![d(&[1.0, 0.0]), d(&[1.0, 0.0])];
        let stream = RequestStream::generate(&dists, &[1.0, 1.0], 1_000, 3);
        // Cache only the small video in country 0.
        let p =
            SizedPlacement::greedy(
                "small-only",
                2,
                2.0,
                &sizes,
                |_, v| {
                    if v == 0 {
                        1.0
                    } else {
                        0.5
                    }
                },
            );
        let report = run_static_sized(&p, &stream, &sizes);
        assert_eq!(report.requests, 1_000);
        assert!(report.hits > 0 && report.hits < 1_000);
        let expected_origin = (report.requests - report.hits) as f64 * 8.0;
        assert!((report.bytes_from_origin - expected_origin).abs() < 1e-9);
        assert!(report.byte_hit_rate() > 0.0 && report.byte_hit_rate() < 1.0);
        assert!(
            report.hit_rate() > report.byte_hit_rate(),
            "misses are the big video"
        );
    }

    #[test]
    fn density_beats_topk_under_byte_budget() {
        // One huge hit and many small niche videos; all demand in one
        // country. Budget = size of the hit.
        let mut sizes = vec![100.0];
        let mut weights = vec![150.0];
        let mut dists = vec![d(&[1.0])];
        for _ in 0..20 {
            sizes.push(5.0);
            weights.push(10.0);
            dists.push(d(&[1.0]));
        }
        let stream = RequestStream::generate(&dists, &weights, 20_000, 9);
        let density =
            SizedPlacement::predictive_sized("density", 1, 100.0, &dists, &weights, &sizes);
        // A naive "top scores first" fills the budget with the hit.
        let naive = SizedPlacement::greedy("naive", 1, 100.0, &sizes, |_, v| {
            // score/size ordering collapses to plain score when sizes
            // are ignored: emulate by dividing by a constant.
            weights[v] * sizes[v] // density ∝ weight → picks the hit
        });
        let dr = run_static_sized(&density, &stream, &sizes);
        let nr = run_static_sized(&naive, &stream, &sizes);
        // The classic trade-off: density-greedy packs many small
        // videos and wins *request* hit rate; caching the one giant
        // hit wins *byte* hit rate. Both directions must hold here.
        assert!(
            dr.hit_rate() > nr.hit_rate(),
            "density requests {} vs naive {}",
            dr.hit_rate(),
            nr.hit_rate()
        );
        assert!(
            nr.byte_hit_rate() > dr.byte_hit_rate(),
            "naive bytes {} vs density {}",
            nr.byte_hit_rate(),
            dr.byte_hit_rate()
        );
    }

    #[test]
    #[should_panic(expected = "sizes must be positive")]
    fn invalid_sizes_panic() {
        let _ = SizedPlacement::greedy("bad", 1, 1.0, &[0.0], |_, _| 1.0);
    }

    #[test]
    fn empty_stream_reports_zero() {
        let sizes = [1.0];
        let dists = vec![d(&[1.0])];
        let stream = RequestStream::generate(&dists, &[1.0], 0, 1);
        let p = SizedPlacement::greedy("e", 1, 1.0, &sizes, |_, _| 1.0);
        let report = run_static_sized(&p, &stream, &sizes);
        assert_eq!(report.byte_hit_rate(), 0.0);
        assert_eq!(report.hit_rate(), 0.0);
        assert_eq!(p.byte_capacity(), 1.0);
        assert_eq!(p.name(), "e");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Greedy placement never exceeds the byte budget, for any
        /// sizes/scores.
        #[test]
        fn budget_is_never_exceeded(
            sizes in proptest::collection::vec(0.1f64..50.0, 1..30),
            scores in proptest::collection::vec(0.0f64..10.0, 1..30),
            budget in 0.0f64..200.0
        ) {
            let n = sizes.len().min(scores.len());
            let sizes = &sizes[..n];
            let scores = &scores[..n];
            let p = SizedPlacement::greedy("prop", 3, budget, sizes, |_, v| scores[v]);
            for c in 0..3 {
                let used = p.bytes_used(CountryId::from_index(c), sizes);
                prop_assert!(used <= budget + 1e-9, "used {used} > budget {budget}");
            }
        }
    }
}
