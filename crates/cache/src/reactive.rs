//! Reactive per-country caches: LRU and LFU.
//!
//! Reactive policies are the deployed state of the art the paper's
//! proactive proposal competes against: they know nothing about a
//! video until it is requested, then keep it according to recency
//! (LRU) or frequency (LFU).

use std::collections::{BinaryHeap, HashMap, VecDeque};

/// A single cache with unit-size objects.
///
/// `access` returns whether the request hit, updating internal state
/// and performing any eviction on a miss — the usual
/// "fetch-on-miss, then insert" edge-cache behaviour.
pub trait ReactiveCache {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Processes a request for `video`; returns `true` on a hit.
    fn access(&mut self, video: usize) -> bool;

    /// Current number of cached objects.
    fn len(&self) -> usize;

    /// Returns `true` if nothing is cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `video` is currently cached (no state
    /// change).
    fn contains(&self, video: usize) -> bool;
}

/// Least-recently-used cache (O(1) amortized via a lazily purged
/// recency queue).
///
/// # Example
///
/// ```
/// use tagdist_cache::{LruCache, ReactiveCache};
///
/// let mut cache = LruCache::new(1);
/// assert!(!cache.access(7)); // cold miss
/// assert!(cache.access(7));  // now hot
/// cache.access(8);           // evicts 7
/// assert!(!cache.contains(7));
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    /// video → last-access tick.
    entries: HashMap<usize, u64>,
    /// (tick, video) pairs, oldest first; entries are stale when the
    /// map holds a newer tick for the video.
    queue: VecDeque<(u64, usize)>,
    tick: u64,
}

impl LruCache {
    /// Creates an empty LRU cache holding up to `capacity` objects.
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity,
            entries: HashMap::new(),
            queue: VecDeque::new(),
            tick: 0,
        }
    }

    fn evict_one(&mut self) {
        while let Some((tick, video)) = self.queue.pop_front() {
            if self.entries.get(&video) == Some(&tick) {
                self.entries.remove(&video);
                return;
            }
            // Stale queue entry: the video was touched again later.
        }
    }
}

impl ReactiveCache for LruCache {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn access(&mut self, video: usize) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.tick += 1;
        let hit = self.entries.contains_key(&video);
        self.entries.insert(video, self.tick);
        self.queue.push_back((self.tick, video));
        if !hit && self.entries.len() > self.capacity {
            self.evict_one();
        }
        hit
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn contains(&self, video: usize) -> bool {
        self.entries.contains_key(&video)
    }
}

/// Least-frequently-used cache (lazily purged min-heap; frequency ties
/// break towards evicting the older entry).
#[derive(Debug, Clone)]
pub struct LfuCache {
    capacity: usize,
    /// video → (frequency, last-insert tick).
    entries: HashMap<usize, (u64, u64)>,
    /// Min-heap of (frequency, tick, video) candidates; stale when the
    /// map disagrees.
    heap: BinaryHeap<core::cmp::Reverse<(u64, u64, usize)>>,
    tick: u64,
}

impl LfuCache {
    /// Creates an empty LFU cache holding up to `capacity` objects.
    pub fn new(capacity: usize) -> LfuCache {
        LfuCache {
            capacity,
            entries: HashMap::new(),
            heap: BinaryHeap::new(),
            tick: 0,
        }
    }

    fn evict_one(&mut self) {
        while let Some(core::cmp::Reverse((freq, tick, video))) = self.heap.pop() {
            if self.entries.get(&video) == Some(&(freq, tick)) {
                self.entries.remove(&video);
                return;
            }
        }
    }
}

impl ReactiveCache for LfuCache {
    fn name(&self) -> &'static str {
        "lfu"
    }

    fn access(&mut self, video: usize) -> bool {
        if self.capacity == 0 {
            return false;
        }
        self.tick += 1;
        let hit = self.entries.contains_key(&video);
        let freq = self.entries.get(&video).map(|&(f, _)| f).unwrap_or(0) + 1;
        self.entries.insert(video, (freq, self.tick));
        self.heap.push(core::cmp::Reverse((freq, self.tick, video)));
        if !hit && self.entries.len() > self.capacity {
            self.evict_one();
        }
        hit
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn contains(&self, video: usize) -> bool {
        self.entries.contains_key(&video)
    }
}

/// Segmented LRU (SLRU): a probation segment for first-timers and a
/// protected segment for re-referenced objects — the classic CDN
/// policy that resists one-hit-wonder pollution, which UGC workloads
/// (most videos viewed a handful of times, §1 of the paper) produce in
/// abundance.
///
/// # Example
///
/// ```
/// use tagdist_cache::{ReactiveCache, SlruCache};
///
/// let mut cache = SlruCache::with_segments(2, 4);
/// cache.access(1);            // probation
/// assert!(cache.access(1));   // re-reference → protected
/// for scan in 100..110 { cache.access(scan); }
/// assert!(cache.contains(1)); // survives the scan
/// ```
#[derive(Debug, Clone)]
pub struct SlruCache {
    probation: LruCache,
    protected: LruCache,
    protected_capacity: usize,
}

impl SlruCache {
    /// Creates an SLRU with the given total capacity, split 20 %
    /// probation / 80 % protected (the usual CDN split).
    pub fn new(capacity: usize) -> SlruCache {
        let probation = (capacity / 5).max(usize::from(capacity > 0));
        let protected = capacity.saturating_sub(probation);
        SlruCache::with_segments(probation, protected)
    }

    /// Creates an SLRU with an explicit segment split.
    pub fn with_segments(probation: usize, protected: usize) -> SlruCache {
        SlruCache {
            probation: LruCache::new(probation),
            protected: LruCache::new(protected),
            protected_capacity: protected,
        }
    }
}

impl ReactiveCache for SlruCache {
    fn name(&self) -> &'static str {
        "slru"
    }

    fn access(&mut self, video: usize) -> bool {
        if self.protected.contains(video) {
            self.protected.access(video);
            return true;
        }
        if self.probation.contains(video) {
            // Promotion on re-reference. The probation copy ages out
            // naturally; removing it eagerly is not worth the extra
            // bookkeeping for a simulator.
            if self.protected_capacity == 0 {
                // Degenerate split (capacity too small for a
                // protected segment): stay in probation.
                return self.probation.access(video);
            }
            self.protected.access(video);
            return true;
        }
        self.probation.access(video)
    }

    fn len(&self) -> usize {
        self.probation.len() + self.protected.len()
    }

    fn contains(&self, video: usize) -> bool {
        self.probation.contains(video) || self.protected.contains(video)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_is_a_miss_then_hits() {
        let mut c = LruCache::new(2);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert_eq!(c.len(), 1);
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // refresh 1; 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_respects_capacity_under_churn() {
        let mut c = LruCache::new(8);
        for i in 0..1_000 {
            c.access(i % 37);
            assert!(c.len() <= 8);
        }
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        c.access(1);
        c.access(1);
        c.access(1); // freq 3
        c.access(2); // freq 1
        c.access(3); // evicts 2 (lowest freq)
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn lfu_frequency_survives_longer_than_recency() {
        // The hot video stays cached through a scan, unlike in LRU.
        let mut lfu = LfuCache::new(4);
        let mut lru = LruCache::new(4);
        for _ in 0..50 {
            lfu.access(0);
            lru.access(0);
        }
        for i in 100..120 {
            lfu.access(i);
            lru.access(i);
        }
        assert!(lfu.contains(0), "LFU keeps the hot object");
        assert!(!lru.contains(0), "LRU flushes it during the scan");
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut lru = LruCache::new(0);
        let mut lfu = LfuCache::new(0);
        for i in 0..10 {
            assert!(!lru.access(i % 2));
            assert!(!lfu.access(i % 2));
        }
        assert!(lru.is_empty());
        assert!(lfu.is_empty());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LruCache::new(1).name(), "lru");
        assert_eq!(LfuCache::new(1).name(), "lfu");
    }

    #[test]
    fn lfu_respects_capacity_under_churn() {
        let mut c = LfuCache::new(8);
        for i in 0..2_000 {
            c.access((i * 7) % 53);
            assert!(c.len() <= 8);
        }
    }

    #[test]
    fn slru_promotes_on_rereference() {
        let mut c = SlruCache::with_segments(2, 2);
        assert!(!c.access(1)); // probation
        assert!(c.access(1)); // promoted
                              // Scan through probation; the promoted object survives.
        for i in 10..20 {
            c.access(i);
        }
        assert!(c.contains(1), "protected object survives a scan");
        assert_eq!(c.name(), "slru");
    }

    #[test]
    fn slru_resists_one_hit_wonders_better_than_lru() {
        let mut slru = SlruCache::with_segments(2, 6);
        let mut lru = LruCache::new(8);
        // A hot working set of 4, re-referenced between scans.
        let mut slru_hits = 0;
        let mut lru_hits = 0;
        for round in 0..200 {
            // Hot objects are re-referenced back-to-back (a view +
            // a replay), which is what promotes them out of probation.
            for hot in 0..4 {
                for _ in 0..2 {
                    if slru.access(hot) {
                        slru_hits += 1;
                    }
                    if lru.access(hot) {
                        lru_hits += 1;
                    }
                }
            }
            // One-hit wonders flood past.
            for cold in 0..6 {
                let key = 1_000 + round * 6 + cold;
                slru.access(key);
                lru.access(key);
            }
        }
        assert!(
            slru_hits > lru_hits,
            "slru {slru_hits} should beat lru {lru_hits} under scan pollution"
        );
    }

    #[test]
    fn slru_default_split_and_capacity_bounds() {
        let mut c = SlruCache::new(10);
        for i in 0..500 {
            c.access(i % 37);
            c.access(i % 7); // some re-references to fill protected
            assert!(c.len() <= 10, "len {}", c.len());
        }
        let mut zero = SlruCache::new(0);
        assert!(!zero.access(1));
        assert!(!zero.access(1));
        assert!(zero.is_empty());
        // Tiny capacity degenerates gracefully.
        let mut one = SlruCache::new(1);
        assert!(!one.access(5));
        assert!(one.access(5), "single-slot SLRU still caches");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lru_never_exceeds_capacity(
            cap in 0usize..16,
            accesses in proptest::collection::vec(0usize..32, 0..300)
        ) {
            let mut c = LruCache::new(cap);
            for v in accesses {
                c.access(v);
                prop_assert!(c.len() <= cap);
            }
        }

        #[test]
        fn lfu_never_exceeds_capacity(
            cap in 0usize..16,
            accesses in proptest::collection::vec(0usize..32, 0..300)
        ) {
            let mut c = LfuCache::new(cap);
            for v in accesses {
                c.access(v);
                prop_assert!(c.len() <= cap);
            }
        }

        #[test]
        fn hit_implies_contains_before_access(
            accesses in proptest::collection::vec(0usize..16, 1..200)
        ) {
            let mut c = LruCache::new(4);
            for v in accesses {
                let contained = c.contains(v);
                let hit = c.access(v);
                prop_assert_eq!(hit, contained);
            }
        }
    }
}
