//! Proactive (static) cache placement.
//!
//! A proactive placement fills each country's edge cache *before*
//! requests arrive, from some per-`(country, video)` score:
//!
//! * **tag-predictive** — the paper's proposal: score =
//!   `predicted_dist(v)[c] × views(v)`,
//! * **geo-blind** — score = `views(v)` (same videos everywhere),
//! * **oracle** — score from the true distributions (an upper bound),
//! * **random** — a seeded random score (a lower bound).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tagdist_geo::{CountryId, CountryMatrix, GeoDist};
use tagdist_par::Pool;

/// A static per-country cache assignment.
#[derive(Debug, Clone)]
pub struct Placement {
    name: String,
    per_country: Vec<HashSet<usize>>,
    capacity: usize,
}

impl Placement {
    /// Builds a placement by taking, for each country, the `capacity`
    /// videos with the highest `score(country, video)`.
    ///
    /// Ties are broken towards lower video indices for determinism.
    /// Countries are ranked independently and in parallel across the
    /// worker pool (the score callback must therefore be `Sync`); each
    /// country's selection depends only on its own scores, so the
    /// result is identical at any thread count.
    pub fn from_scores<F>(
        name: impl Into<String>,
        country_count: usize,
        video_count: usize,
        capacity: usize,
        score: F,
    ) -> Placement
    where
        F: Fn(CountryId, usize) -> f64 + Sync,
    {
        let countries: Vec<usize> = (0..country_count).collect();
        // Few countries, heavy per-country work (a full catalogue
        // scan): schedule per item, not by the bulk chunk policy.
        let per_country = Pool::from_env().par_map_heavy(&countries, |_, &c| {
            let country = CountryId::from_index(c);
            let mut ranked: Vec<usize> = (0..video_count).collect();
            let k = capacity.min(video_count);
            if k == 0 {
                return HashSet::new();
            }
            let scores: Vec<f64> = (0..video_count).map(|v| score(country, v)).collect();
            if k < ranked.len() {
                ranked.select_nth_unstable_by(k - 1, |&a, &b| {
                    scores[b].total_cmp(&scores[a]).then(a.cmp(&b))
                });
                ranked.truncate(k);
            }
            ranked.into_iter().collect::<HashSet<usize>>()
        });
        Placement {
            name: name.into(),
            per_country,
            capacity,
        }
    }

    /// Tag-predictive placement (the paper's proposal): rank videos in
    /// each country by `predicted[v].prob(c) × weight[v]`.
    ///
    /// # Panics
    ///
    /// Panics if `predicted` and `weights` differ in length.
    pub fn predictive(
        name: impl Into<String>,
        country_count: usize,
        capacity: usize,
        predicted: &[GeoDist],
        weights: &[f64],
    ) -> Placement {
        assert_eq!(predicted.len(), weights.len());
        Placement::from_scores(name, country_count, predicted.len(), capacity, |c, v| {
            predicted[v].prob(c) * weights[v]
        })
    }

    /// [`predictive`](Placement::predictive) over a columnar
    /// probability matrix (one normalized row per video) instead of a
    /// slice of [`GeoDist`]s — the zero-copy path for matrix-backed
    /// prediction pipelines.
    ///
    /// # Panics
    ///
    /// Panics if `rows` and `weights` disagree on the video count.
    pub fn predictive_rows(
        name: impl Into<String>,
        country_count: usize,
        capacity: usize,
        rows: &CountryMatrix,
        weights: &[f64],
    ) -> Placement {
        assert_eq!(rows.rows(), weights.len());
        Placement::from_scores(name, country_count, rows.rows(), capacity, |c, v| {
            rows.row(v)[c.index()] * weights[v]
        })
    }

    /// Geo-blind placement: every country caches the same globally
    /// most-viewed videos.
    pub fn geo_blind(country_count: usize, capacity: usize, weights: &[f64]) -> Placement {
        Placement::from_scores(
            "geo-blind",
            country_count,
            weights.len(),
            capacity,
            |_, v| weights[v],
        )
    }

    /// Random placement (seeded), the sanity-check lower bound.
    pub fn random(
        country_count: usize,
        video_count: usize,
        capacity: usize,
        seed: u64,
    ) -> Placement {
        let mut rng = StdRng::seed_from_u64(seed);
        let scores: Vec<Vec<f64>> = (0..country_count)
            .map(|_| (0..video_count).map(|_| rng.gen()).collect())
            .collect();
        Placement::from_scores("random", country_count, video_count, capacity, |c, v| {
            scores[c.index()][v]
        })
    }

    /// Human-readable policy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured per-country capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of countries.
    pub fn country_count(&self) -> usize {
        self.per_country.len()
    }

    /// Returns `true` if `video` is cached in `country`.
    pub fn contains(&self, country: CountryId, video: usize) -> bool {
        self.per_country
            .get(country.index())
            .is_some_and(|set| set.contains(&video))
    }

    /// The cached set of one country.
    ///
    /// # Panics
    ///
    /// Panics if `country` is out of range.
    pub fn cached(&self, country: CountryId) -> &HashSet<usize> {
        &self.per_country[country.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagdist_geo::CountryVec;

    fn d(values: &[f64]) -> GeoDist {
        GeoDist::from_counts(&CountryVec::from_values(values.to_vec())).unwrap()
    }

    fn c(i: usize) -> CountryId {
        CountryId::from_index(i)
    }

    #[test]
    fn from_scores_takes_the_top_k() {
        let p = Placement::from_scores("test", 1, 5, 2, |_, v| v as f64);
        assert!(p.contains(c(0), 4));
        assert!(p.contains(c(0), 3));
        assert!(!p.contains(c(0), 0));
        assert_eq!(p.cached(c(0)).len(), 2);
        assert_eq!(p.name(), "test");
        assert_eq!(p.capacity(), 2);
    }

    #[test]
    fn capacity_larger_than_catalogue_caches_everything() {
        let p = Placement::from_scores("all", 2, 3, 10, |_, v| v as f64);
        for country in 0..2 {
            assert_eq!(p.cached(c(country)).len(), 3);
        }
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let p = Placement::from_scores("none", 2, 3, 0, |_, v| v as f64);
        assert!(p.cached(c(0)).is_empty());
        assert!(!p.contains(c(0), 0));
    }

    #[test]
    fn predictive_places_videos_where_predicted() {
        // Video 0 predicted in country 0, video 1 in country 1.
        let predicted = vec![d(&[0.9, 0.1]), d(&[0.1, 0.9])];
        let p = Placement::predictive("tags", 2, 1, &predicted, &[1.0, 1.0]);
        assert!(p.contains(c(0), 0));
        assert!(p.contains(c(1), 1));
        assert!(!p.contains(c(0), 1));
    }

    #[test]
    fn predictive_weighs_by_views() {
        // Video 1 is slightly less local but vastly more viewed.
        let predicted = vec![d(&[0.9, 0.1]), d(&[0.6, 0.4])];
        let p = Placement::predictive("tags", 2, 1, &predicted, &[1.0, 100.0]);
        assert!(p.contains(c(0), 1), "views dominate the score");
    }

    #[test]
    fn predictive_rows_matches_predictive() {
        let predicted = vec![d(&[0.9, 0.1]), d(&[0.1, 0.9]), d(&[0.6, 0.4])];
        let weights = [1.0, 2.0, 50.0];
        let mut rows = CountryMatrix::zeros(3, 2);
        for (v, dist) in predicted.iter().enumerate() {
            rows.row_mut(v).copy_from_slice(dist.as_vec().as_slice());
        }
        for capacity in [0, 1, 2, 3] {
            let by_dist = Placement::predictive("tags", 2, capacity, &predicted, &weights);
            let by_rows = Placement::predictive_rows("tags", 2, capacity, &rows, &weights);
            for country in 0..2 {
                assert_eq!(
                    by_dist.cached(c(country)),
                    by_rows.cached(c(country)),
                    "capacity {capacity}, country {country}"
                );
            }
        }
    }

    #[test]
    fn geo_blind_is_the_same_everywhere() {
        let p = Placement::geo_blind(3, 2, &[5.0, 1.0, 9.0, 2.0]);
        for country in 0..3 {
            assert!(p.contains(c(country), 0));
            assert!(p.contains(c(country), 2));
            assert_eq!(p.cached(c(country)).len(), 2);
        }
    }

    #[test]
    fn random_is_seeded_and_country_specific() {
        let a = Placement::random(4, 100, 10, 1);
        let b = Placement::random(4, 100, 10, 1);
        for country in 0..4 {
            assert_eq!(a.cached(c(country)), b.cached(c(country)));
        }
        let other = Placement::random(4, 100, 10, 2);
        let differs = (0..4).any(|i| a.cached(c(i)) != other.cached(c(i)));
        assert!(differs);
        // Different countries get (almost surely) different sets.
        assert_ne!(a.cached(c(0)), a.cached(c(1)));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let p = Placement::from_scores("t", 1, 2, 1, |_, v| v as f64);
        assert!(!p.contains(c(5), 0));
    }

    #[test]
    fn ties_break_towards_lower_indices() {
        let p = Placement::from_scores("tie", 1, 4, 2, |_, _| 1.0);
        assert!(p.contains(c(0), 0));
        assert!(p.contains(c(0), 1));
    }
}
