//! UI tests for `cargo xtask check`: one known-bad fixture per rule, a
//! known-good fixture, allowlist suppression, and the binary's exit
//! code contract.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use std::fs;
use std::path::{Path, PathBuf};

use xtask::{check_source, AllowList, CheckOutcome, Violation, CHECKED_CRATES};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn check_fixture(name: &str, allow: &AllowList) -> Vec<Violation> {
    let source = fs::read_to_string(fixture_dir().join(name)).expect("fixture exists");
    check_source(name, &source, allow)
}

fn active_rules(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations
        .iter()
        .filter(|v| !v.allowed)
        .map(|v| v.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn bad_no_panic_trips_only_that_rule() {
    let violations = check_fixture("bad_no_panic.rs", &AllowList::empty());
    assert_eq!(active_rules(&violations), vec!["no-panic"]);
    // Both the `expect` and the `panic!` are caught; the test-module
    // unwrap is not.
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations.iter().all(|v| v.line < 12));
}

#[test]
fn bad_float_eq_trips_only_that_rule() {
    let violations = check_fixture("bad_float_eq.rs", &AllowList::empty());
    assert_eq!(active_rules(&violations), vec!["float-eq"]);
    assert_eq!(violations.len(), 2, "{violations:?}");
}

#[test]
fn bad_wall_clock_trips_only_that_rule() {
    let violations = check_fixture("bad_wall_clock.rs", &AllowList::empty());
    assert_eq!(active_rules(&violations), vec!["wall-clock"]);
    // Two Instant::now calls and one SystemTime; the test-module
    // Instant::now is not counted.
    assert_eq!(violations.len(), 3, "{violations:?}");
}

#[test]
fn wall_clock_respects_sanctioned_paths() {
    let source = fs::read_to_string(fixture_dir().join("bad_wall_clock.rs")).unwrap();
    // The same code under the recorder's path is the module contract.
    let violations = check_source("crates/obs/src/recorder.rs", &source, &AllowList::empty());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn bad_unseeded_rng_trips_only_that_rule() {
    let violations = check_fixture("bad_unseeded_rng.rs", &AllowList::empty());
    assert_eq!(active_rules(&violations), vec!["unseeded-rng"]);
    // thread_rng, rand::random and RandomState.
    assert_eq!(violations.len(), 3, "{violations:?}");
}

#[test]
fn bad_float_reduction_trips_only_that_rule() {
    let violations = check_fixture("bad_float_reduction.rs", &AllowList::empty());
    assert_eq!(active_rules(&violations), vec!["float-reduction"]);
    // Turbofish sum, let-typed sum, float fold.
    assert_eq!(violations.len(), 3, "{violations:?}");
}

#[test]
fn float_reduction_exempts_the_kernel_module() {
    let source = fs::read_to_string(fixture_dir().join("bad_float_reduction.rs")).unwrap();
    let violations = check_source("crates/geo/src/kernel.rs", &source, &AllowList::empty());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn bad_unordered_iter_trips_only_that_rule() {
    let violations = check_fixture("bad_unordered_iter.rs", &AllowList::empty());
    assert_eq!(active_rules(&violations), vec!["unordered-iter"]);
    // The bare collect and the order-sensitive loop body.
    assert_eq!(violations.len(), 2, "{violations:?}");
    assert!(violations[0].snippet.contains("collect"));
}

#[test]
fn good_analysis_fixtures_are_clean() {
    for name in [
        "good_wall_clock.rs",
        "good_unseeded_rng.rs",
        "good_float_reduction.rs",
        "good_unordered_iter.rs",
    ] {
        let violations = check_fixture(name, &AllowList::empty());
        assert!(violations.is_empty(), "{name}: {violations:?}");
    }
}

#[test]
fn bad_errors_doc_trips_only_that_rule() {
    let violations = check_fixture("bad_errors_doc.rs", &AllowList::empty());
    assert_eq!(active_rules(&violations), vec!["errors-doc"]);
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert!(violations[0].snippet.contains("parse_share"));
}

#[test]
fn good_fixture_is_clean() {
    let violations = check_fixture("good.rs", &AllowList::empty());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn allowlist_suppresses_matched_findings_only() {
    let allow = AllowList::parse(
        r#"
[[allow]]
rule = "no-panic"
path = "bad_no_panic.rs"
contains = "expect"
reason = "fixture: demonstrates suppression"
"#,
    )
    .expect("allowlist parses");
    let violations = check_fixture("bad_no_panic.rs", &allow);
    let allowed: Vec<&Violation> = violations.iter().filter(|v| v.allowed).collect();
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].snippet.contains("expect"));
    // The panic! finding is NOT suppressed.
    assert_eq!(active_rules(&violations), vec!["no-panic"]);
    assert_eq!(violations.len(), 2);
}

/// End-to-end exit-code contract: the binary exits 1 on a violation,
/// 0 on a clean tree, and the JSON report lands where asked.
#[test]
fn binary_exit_codes_and_report() {
    let scratch = std::env::temp_dir().join(format!("xtask-ui-{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);

    // A fake workspace: every checked crate present, one carrying a
    // bad fixture, the rest carrying the good one.
    let good = fs::read_to_string(fixture_dir().join("good.rs")).unwrap();
    let bad = fs::read_to_string(fixture_dir().join("bad_no_panic.rs")).unwrap();
    for krate in CHECKED_CRATES {
        let src = scratch.join("crates").join(krate).join("src");
        fs::create_dir_all(&src).unwrap();
        fs::write(src.join("lib.rs"), &good).unwrap();
    }
    fs::write(scratch.join("crates/geo/src/panicky.rs"), &bad).unwrap();

    let json = scratch.join("check.json");
    let sarif = scratch.join("check.sarif");
    let run = |root: &Path| {
        std::process::Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args([
                "check",
                "--quiet",
                "--no-cache",
                "--root",
                &root.display().to_string(),
                "--json",
                &json.display().to_string(),
                "--sarif",
                &sarif.display().to_string(),
            ])
            .output()
            .expect("binary runs")
    };

    let out = run(&scratch);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let report = fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"rule\": \"no-panic\""));
    assert!(report.contains("panicky.rs"));
    let sarif_doc = fs::read_to_string(&sarif).unwrap();
    assert!(sarif_doc.contains("\"version\":\"2.1.0\""));
    assert!(sarif_doc.contains("\"ruleId\":\"no-panic\""));
    assert!(sarif_doc.contains("panicky.rs"));

    // An allowlist covering both findings turns the tree clean; in
    // SARIF they downgrade to suppressed notes.
    fs::write(
        scratch.join("xtask-allow.toml"),
        "[[allow]]\nrule = \"no-panic\"\npath = \"panicky.rs\"\nreason = \"fixture\"\n",
    )
    .unwrap();
    let out = run(&scratch);
    assert_eq!(out.status.code(), Some(0), "allowlisted tree must exit 0");
    let report = fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"allowed\": true"));
    let sarif_doc = fs::read_to_string(&sarif).unwrap();
    assert!(sarif_doc.contains("\"suppressions\""));

    // An allowlist entry matching nothing is itself a violation.
    fs::write(
        scratch.join("xtask-allow.toml"),
        "[[allow]]\nrule = \"no-panic\"\npath = \"panicky.rs\"\nreason = \"fixture\"\n\n\
         [[allow]]\nrule = \"wall-clock\"\npath = \"nonexistent.rs\"\nreason = \"stale\"\n",
    )
    .unwrap();
    let out = run(&scratch);
    assert_eq!(out.status.code(), Some(1), "stale allow entry must exit 1");
    let report = fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"rule\": \"allow-stale\""));
    assert!(report.contains("nonexistent.rs"));

    let _ = fs::remove_dir_all(&scratch);
}

/// The real repository is clean: guards against regressions landing
/// violations without updating the allowlist.
#[test]
fn repository_tree_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let allow = xtask::load_allowlist(root).expect("allowlist loads");
    let outcome: CheckOutcome = xtask::check_workspace(root, &allow).expect("tree scans");
    assert!(
        outcome.is_clean(),
        "xtask check found violations: {:?}",
        outcome.active().collect::<Vec<_>>()
    );
    assert!(outcome.files_checked > 50);
}
