//! Fixture: trips the `wall-clock` pass (and nothing else).

/// Reads the ambient clock twice over.
pub fn jitter() -> bool {
    let a = std::time::Instant::now();
    let b = std::time::Instant::now();
    b.duration_since(a).as_nanos() > 0
}

/// Names the epoch through the wall clock.
pub fn epoch_display() -> String {
    format!("{:?}", std::time::SystemTime::UNIX_EPOCH)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_time_itself() {
        let t = std::time::Instant::now();
        assert!(t.elapsed().as_secs() < 60);
    }
}
