//! Fixture: trips the `float-reduction` pass (and nothing else).

/// Sums shares in ad-hoc iterator order.
pub fn total_share(shares: &[f64]) -> f64 {
    shares.iter().sum::<f64>()
}

/// Means through an untyped sum bound to a float local.
pub fn mean(values: &[f64]) -> f64 {
    let total: f64 = values.iter().sum();
    total / values.len().max(1) as f64
}

/// Folds with a float seed.
pub fn weighted(values: &[f64]) -> f64 {
    values.iter().fold(0.0, |acc, v| acc + 0.5 * v)
}
