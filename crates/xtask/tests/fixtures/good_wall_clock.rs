//! Fixture: takes the virtual clock; the `wall-clock` pass stays
//! quiet. Mentions of Instant::now() in strings, comments and
//! docs must not count, and a type named Instant without `::now`
//! is fine.

/// Ticks a virtual clock forward. Never calls Instant::now().
pub fn advance(now_virtual_us: u64, delta_us: u64) -> u64 {
    now_virtual_us.saturating_add(delta_us)
}

/// Describes the policy; the literal mentions SystemTime only as text.
pub fn policy() -> String {
    "library code must not read Instant::now() or SystemTime".to_owned()
}

/// Accepts a caller-made timestamp without creating one.
pub fn format_us(stamp_us: u64) -> String {
    format!("{stamp_us} us")
}
