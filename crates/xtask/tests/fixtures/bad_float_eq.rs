//! Fixture: trips the `float-eq` rule (and nothing else).

/// Compares two shares the fragile way.
pub fn same_share(a: f64, b: f64) -> bool { a == b }

/// Exact-literal comparison, equally fragile.
pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

/// Inequalities are fine.
pub fn is_small(x: f64) -> bool {
    x < 0.5
}
