//! Fixture: passes every rule.
//!
//! Exercises the constructs the rules must NOT trip over: strings and
//! comments mentioning forbidden tokens, `unwrap_or` variants,
//! sanctioned `#[expect]` sites, sorted hash-container output in a
//! plain module, and documented fallible APIs.

use std::collections::HashMap;

/// Greets without panicking. The string mentions unwrap() and
/// panic!() — literals must not count. // and neither must x.unwrap()
pub fn greeting() -> String {
    "never unwrap() or panic!() in a string".to_owned()
}

/// Falls back instead of unwrapping.
pub fn head_or_zero(values: &[u32]) -> u32 {
    values.first().copied().unwrap_or(0)
}

/// A sanctioned invariant-backed panic site.
#[expect(clippy::expect_used, reason = "the registry is statically non-empty")]
pub fn first_region(names: &[&str]) -> String {
    (*names.first().expect("registry is non-empty")).to_owned()
}

/// Epsilon comparison through a helper, not `==`.
pub fn close_enough(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12
}

/// Deterministic rendering: sorts before output.
pub fn render_sorted(counts: &HashMap<String, usize>) -> String {
    let mut rows: Vec<(&String, &usize)> = counts.iter().collect();
    rows.sort();
    let mut out = String::new();
    for (name, n) in rows {
        out.push_str(&format!("{name}: {n}\n"));
    }
    out
}

/// Documented fallible API.
///
/// # Errors
///
/// Returns an error message when `text` is not a number.
pub fn parse(text: &str) -> Result<f64, String> {
    text.parse().map_err(|e| format!("bad number: {e}"))
}
