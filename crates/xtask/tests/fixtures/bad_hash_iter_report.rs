//! Fixture: trips the `hash-iter` rule — the file name marks it as a
//! report (determinism-sensitive) module.

use std::collections::HashMap;

/// Renders counts in whatever order the hasher picked — nondeterministic.
pub fn render_counts(counts: &HashMap<String, usize>) -> String {
    let mut out = String::new();
    for (name, n) in counts.iter() {
        out.push_str(name);
        out.push_str(": ");
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}

/// Lookup without iteration is fine.
pub fn lookup(counts: &HashMap<String, usize>, key: &str) -> usize {
    counts.get(key).copied().unwrap_or(0)
}
