//! Fixture: trips the `errors-doc` rule (and nothing else).

/// Parses a share value.
pub fn parse_share(text: &str) -> Result<f64, String> {
    text.parse().map_err(|e| format!("bad share: {e}"))
}

/// Infallible functions need no `# Errors` section.
pub fn double(x: u32) -> u32 {
    x * 2
}
