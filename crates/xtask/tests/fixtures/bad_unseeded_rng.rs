//! Fixture: trips the `unseeded-rng` pass (and nothing else).

/// Picks with ambient randomness.
pub fn ambient_pick(values: &[u32]) -> u32 {
    let mut rng = rand::thread_rng();
    let pick: usize = rand::random();
    let _ = &mut rng;
    values.get(pick % values.len().max(1)).copied().unwrap_or(0)
}

/// Builds a map with a randomized hasher.
pub fn random_state_size() -> usize {
    let state = std::collections::hash_map::RandomState::new();
    core::mem::size_of_val(&state)
}
