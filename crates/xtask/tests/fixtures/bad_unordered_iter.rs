//! Fixture: trips the `unordered-iter` pass (and nothing else).

use std::collections::HashMap;

/// Emits keys in whatever order the hasher picked.
pub fn keys_in_hash_order(counts: &HashMap<String, u32>) -> Vec<String> {
    counts.keys().cloned().collect()
}

/// Accumulates into an order-sensitive sink.
pub fn concat_names(counts: &HashMap<String, u32>, out: &mut String) {
    for name in counts.keys() {
        out.push_str(name);
    }
}
