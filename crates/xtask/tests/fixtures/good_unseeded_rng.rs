//! Fixture: seeded randomness only; the `unseeded-rng` pass stays
//! quiet. The docs may mention thread_rng() as a counter-example.

/// Derives the per-run generator from the study seed — never from
/// thread_rng() or other ambient entropy.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Splits one run seed into a stable per-worker stream.
pub fn worker_seed(seed: u64, worker: u64) -> u64 {
    seed.wrapping_add(worker.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}
