//! Fixture: hash iteration with the order laundered; the
//! `unordered-iter` pass stays quiet.

use std::collections::{BTreeMap, HashMap};

/// Sorted before the order can leak.
pub fn sorted_keys(counts: &HashMap<String, u32>) -> Vec<String> {
    let mut keys: Vec<String> = counts.keys().cloned().collect();
    keys.sort();
    keys
}

/// Keyed destination: per-key writes are order-free.
pub fn rekey(counts: &HashMap<String, u32>) -> BTreeMap<String, u32> {
    let mut out = BTreeMap::new();
    for (name, n) in counts.iter() {
        out.insert(name.clone(), *n);
    }
    out
}

/// Order-insensitive terminal.
pub fn total(counts: &HashMap<String, u32>) -> u32 {
    counts.values().copied().sum::<u32>()
}
