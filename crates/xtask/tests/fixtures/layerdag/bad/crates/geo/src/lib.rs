//! Layer-0 crate reaching up into layer 3: a layering violation.

pub use tagdist_tags::clusters;
