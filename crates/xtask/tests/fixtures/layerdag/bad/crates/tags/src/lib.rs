//! Declares ytsim but never uses it, and uses geo without declaring
//! it: one dead edge, one undeclared edge.

use tagdist_geo::CountryVec;

/// Touches the undeclared import.
pub fn dims(v: &CountryVec) -> usize {
    v.len()
}
