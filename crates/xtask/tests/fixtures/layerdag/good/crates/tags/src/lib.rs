//! Layer-3 crate depending downward on layer 0: legal.

use tagdist_geo::CountryVec;

/// Touches the declared, downward import.
pub fn dims(v: &CountryVec) -> usize {
    v.len()
}
