//! Layer-0 crate with no workspace dependencies.

/// A stand-in vector type.
pub struct CountryVec {
    values: Vec<f64>,
}

impl CountryVec {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}
