//! Fixture: float reductions the `float-reduction` pass accepts —
//! routed through the vetted kernel, integer-typed, or
//! order-insensitive by construction.

/// Routes the order-sensitive sum through the vetted kernel.
pub fn total_share(shares: &[f64]) -> f64 {
    tagdist_geo::kernel::sum(shares)
}

/// Cosine terms through the kernel's sequential dot/norm.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    tagdist_geo::kernel::dot(a, b)
        / (tagdist_geo::kernel::norm(a) * tagdist_geo::kernel::norm(b)).max(1e-300)
}

/// Integer sums are order-free.
pub fn total_count(counts: &[u64]) -> u64 {
    counts.iter().sum::<u64>()
}

/// A max-fold is order-insensitive.
pub fn peak(values: &[f64]) -> f64 {
    values.iter().copied().fold(f64::MIN, f64::max)
}
