//! Fixture: trips the `no-panic` rule (and nothing else).

/// Looks up a value the panicking way.
pub fn lookup(values: &[u32], pos: usize) -> u32 {
    let first = values.first().expect("values must be non-empty");
    if pos > values.len() {
        panic!("out of range");
    }
    values.get(pos).copied().unwrap_or(*first)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = [1u32, 2];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
