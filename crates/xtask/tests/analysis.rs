//! Integration tests for the analysis subsystem: parser round-trip
//! over the real tree, layer-dag fixture workspaces, the content-hash
//! cache, and thread-count determinism of the full report.
#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use std::fs;
use std::path::{Path, PathBuf};

use xtask::analysis::modgraph::{check_layers, workspace_spec};
use xtask::analysis::{parse, token};
use xtask::{
    check_workspace_with, lexer, load_allowlist, to_json, to_sarif, AllowList, CheckConfig,
    CHECKED_CRATES,
};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in fs::read_dir(dir).expect("readable dir") {
        let path = entry.expect("entry").path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Tokenizing the rendered token stream reproduces the same kinds and
/// texts for every real source file — the lexer/tokenizer round-trip
/// the parser builds on.
#[test]
fn tokenizer_round_trips_over_the_real_tree() {
    let root = workspace_root();
    let mut files = Vec::new();
    for krate in CHECKED_CRATES {
        rs_files(&root.join("crates").join(krate).join("src"), &mut files);
    }
    rs_files(&root.join("crates/xtask/src"), &mut files);
    assert!(files.len() > 50, "expected a real tree, got {files:?}");
    for file in files {
        let source = fs::read_to_string(&file).unwrap();
        let cf = lexer::clean(&source);
        let tokens = token::tokenize(&cf.code);
        let rendered = token::render(&tokens);
        let again = token::tokenize(&[rendered]);
        assert_eq!(tokens.len(), again.len(), "{}", file.display());
        for (a, b) in tokens.iter().zip(&again) {
            assert_eq!(a.kind, b.kind, "{}", file.display());
            assert_eq!(a.text, b.text, "{}", file.display());
        }
    }
}

/// The parser finds items in every real source file and its token
/// stream survives parsing unchanged.
#[test]
fn parser_walks_the_real_tree() {
    let root = workspace_root();
    let mut files = Vec::new();
    for krate in CHECKED_CRATES {
        rs_files(&root.join("crates").join(krate).join("src"), &mut files);
    }
    let mut fns = 0usize;
    for file in files {
        let source = fs::read_to_string(&file).unwrap();
        let cf = lexer::clean(&source);
        let tokens = token::tokenize(&cf.code);
        let count = tokens.len();
        let sf = parse::parse(tokens);
        assert_eq!(sf.tokens.len(), count, "{}", file.display());
        assert!(!sf.items.is_empty(), "{}", file.display());
        sf.for_each_fn(|_, _| fns += 1);
    }
    assert!(fns > 100, "expected hundreds of functions, saw {fns}");
}

#[test]
fn layer_dag_fixture_workspaces() {
    let bad = fixture_dir().join("layerdag/bad");
    let violations = check_layers(&bad, &workspace_spec()).expect("fixture tree scans");
    let messages: Vec<&str> = violations.iter().map(|v| v.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("layering violation")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("unused declared dependency")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("undeclared workspace dependency")),
        "{messages:?}"
    );

    let good = fixture_dir().join("layerdag/good");
    let violations = check_layers(&good, &workspace_spec()).expect("fixture tree scans");
    assert!(violations.is_empty(), "{violations:?}");
}

/// Builds a minimal fake workspace (every checked crate with one good
/// file) under a scratch dir.
fn fake_workspace(tag: &str) -> PathBuf {
    let scratch = std::env::temp_dir().join(format!("xtask-analysis-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&scratch);
    let good = fs::read_to_string(fixture_dir().join("good.rs")).unwrap();
    for krate in CHECKED_CRATES {
        let src = scratch.join("crates").join(krate).join("src");
        fs::create_dir_all(&src).unwrap();
        fs::write(src.join("lib.rs"), &good).unwrap();
    }
    scratch
}

#[test]
fn cache_skips_unchanged_files_and_invalidates_on_edit() {
    let scratch = fake_workspace("cache");
    let config = CheckConfig {
        cache_path: Some(scratch.join("cache.json")),
        threads: Some(2),
    };
    let allow = AllowList::empty();

    let cold = check_workspace_with(&scratch, &allow, &config).unwrap();
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, cold.files_checked);
    assert!(cold.is_clean(), "{:?}", cold.active().collect::<Vec<_>>());

    let warm = check_workspace_with(&scratch, &allow, &config).unwrap();
    assert_eq!(warm.cache_hits, warm.files_checked);
    assert_eq!(warm.cache_misses, 0);
    // Warm and cold runs must report identically, bytes included.
    assert_eq!(to_json(&cold), to_json(&warm));
    assert_eq!(
        to_sarif(&cold, xtask::ALL_RULES),
        to_sarif(&warm, xtask::ALL_RULES)
    );

    // Editing one file re-analyzes exactly that file and surfaces the
    // new finding.
    let bad = fs::read_to_string(fixture_dir().join("bad_no_panic.rs")).unwrap();
    fs::write(scratch.join("crates/geo/src/lib.rs"), &bad).unwrap();
    let edited = check_workspace_with(&scratch, &allow, &config).unwrap();
    assert_eq!(edited.cache_misses, 1);
    assert_eq!(edited.cache_hits, edited.files_checked - 1);
    assert!(edited
        .active()
        .any(|v| v.rule == "no-panic" && v.path.contains("crates/geo")));

    let _ = fs::remove_dir_all(&scratch);
}

/// Cached findings re-enter the allowlist each run: covering a cached
/// violation suppresses it without re-analysis.
#[test]
fn cache_stores_findings_before_the_allowlist() {
    let scratch = fake_workspace("allow");
    let bad = fs::read_to_string(fixture_dir().join("bad_no_panic.rs")).unwrap();
    fs::write(scratch.join("crates/geo/src/panicky.rs"), &bad).unwrap();
    let config = CheckConfig {
        cache_path: Some(scratch.join("cache.json")),
        threads: Some(1),
    };

    let first = check_workspace_with(&scratch, &AllowList::empty(), &config).unwrap();
    assert!(!first.is_clean());

    let allow = AllowList::parse(
        "[[allow]]\nrule = \"no-panic\"\npath = \"panicky.rs\"\nreason = \"fixture\"\n",
    )
    .unwrap();
    let second = check_workspace_with(&scratch, &allow, &config).unwrap();
    assert_eq!(second.cache_hits, second.files_checked);
    assert!(
        second.is_clean(),
        "{:?}",
        second.active().collect::<Vec<_>>()
    );
    assert_eq!(second.allowed_count(), 2);

    let _ = fs::remove_dir_all(&scratch);
}

/// The acceptance bar: the full report over the real tree is
/// byte-identical at 1 and 8 worker threads.
#[test]
fn analyzer_output_is_thread_count_invariant() {
    let root = workspace_root();
    let allow = load_allowlist(&root).expect("allowlist loads");
    let outcomes: Vec<_> = [1usize, 8]
        .iter()
        .map(|&t| {
            let config = CheckConfig {
                cache_path: None,
                threads: Some(t),
            };
            check_workspace_with(&root, &allow, &config).expect("tree scans")
        })
        .collect();
    assert_eq!(to_json(&outcomes[0]), to_json(&outcomes[1]));
    assert_eq!(
        to_sarif(&outcomes[0], xtask::ALL_RULES),
        to_sarif(&outcomes[1], xtask::ALL_RULES)
    );
}
