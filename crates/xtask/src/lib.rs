//! `cargo xtask` — workspace-wide static analysis and invariant
//! enforcement for the tagdist repro.
//!
//! `cargo xtask check` scans the library crates (the ten
//! `#![forbid(unsafe_code)]` members, plus xtask's own sources) with
//! two engines: the token-level domain rules in [`rules`] and the
//! parser-backed determinism passes in [`analysis`] (wall-clock,
//! unordered-iter, unseeded-rng, float-reduction, layer-dag). It
//! honours the `xtask-allow.toml` allowlist (and flags stale entries),
//! caches per-file results by content hash, fans file analysis out on
//! the `tagdist-par` pool, writes machine-readable JSON and SARIF
//! reports, and exits nonzero on any unsuppressed finding.
//!
//! `cargo xtask bench-gate` compares the deterministic counters of a
//! `bench-report --smoke` run against the checked-in
//! `bench-baseline.json` — see [`benchgate`].
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod allowlist;
pub mod analysis;
pub mod benchgate;
pub mod checker;
pub mod jsonout;
pub mod lexer;
pub mod rules;
pub mod selfbench;

pub use allowlist::{AllowEntry, AllowList, AllowParseError};
pub use analysis::{sarif::to_sarif, ALL_RULES};
pub use benchgate::{compare, deterministic_counters, load_counters, GateDiff};
pub use checker::{
    check_files, check_source, check_workspace, check_workspace_with, load_allowlist, CheckConfig,
    CheckOutcome, CHECKED_CRATES,
};
pub use jsonout::to_json;
pub use rules::{Violation, RULES};
