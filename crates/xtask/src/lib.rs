//! `cargo xtask` — workspace-wide static analysis and invariant
//! enforcement for the tagdist repro.
//!
//! `cargo xtask check` scans the library crates (the ten
//! `#![forbid(unsafe_code)]` members) for domain rules that generic
//! lints cannot express — see [`rules`] — honours the
//! `xtask-allow.toml` allowlist, writes a machine-readable JSON
//! report, and exits nonzero on any unsuppressed finding.
//!
//! `cargo xtask bench-gate` compares the deterministic counters of a
//! `bench-report --smoke` run against the checked-in
//! `bench-baseline.json` — see [`benchgate`].
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod allowlist;
pub mod benchgate;
pub mod checker;
pub mod jsonout;
pub mod lexer;
pub mod rules;

pub use allowlist::{AllowEntry, AllowList, AllowParseError};
pub use benchgate::{compare, deterministic_counters, load_counters, GateDiff};
pub use checker::{
    check_files, check_source, check_workspace, load_allowlist, CheckOutcome, CHECKED_CRATES,
};
pub use jsonout::to_json;
pub use rules::{Violation, RULES, SENSITIVE_PATH_MARKERS};
