//! The benchmark regression gate.
//!
//! `cargo xtask bench-gate` runs `bench-report --smoke`, extracts the
//! deterministic-counter subtree (`metrics.deterministic`) from the
//! smoke JSON, and compares it against the checked-in
//! `bench-baseline.json`. The subtree is a pure function of the tiny
//! corpus — counts of items, rows, cells and (single-threaded)
//! allocations — so any drift is a real behavioural change, not
//! noise:
//!
//! * `alloc.*` keys gate **increases** only: an allocation count that
//!   went down is an improvement the baseline should absorb, one that
//!   went up is the regression this gate exists to catch;
//! * every other key must match exactly;
//! * keys present on one side only are failures in both directions.
//!
//! `--update` rewrites the baseline from the current measurement
//! instead of comparing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use tagdist_obs::Value;

/// Gauged allocation keys: regressions are increases, decreases are
/// baseline updates.
const INCREASE_ONLY_PREFIX: &str = "alloc.";

/// One per-key verdict of the baseline comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateDiff {
    /// Key missing from the new measurement.
    Missing(String, u64),
    /// Key absent from the baseline.
    Unexpected(String, u64),
    /// Exact-match key whose value drifted (baseline, measured).
    Changed(String, u64, u64),
    /// `alloc.*` key that increased (baseline, measured).
    Increased(String, u64, u64),
    /// `alloc.*` key that decreased — reported, but not a failure.
    Improved(String, u64, u64),
}

impl GateDiff {
    /// Whether this entry fails the gate.
    #[must_use]
    pub fn is_failure(&self) -> bool {
        !matches!(self, GateDiff::Improved(..))
    }
}

impl std::fmt::Display for GateDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateDiff::Missing(k, b) => {
                write!(f, "{k}: present in baseline ({b}) but not measured")
            }
            GateDiff::Unexpected(k, m) => {
                write!(f, "{k}: measured ({m}) but absent from baseline")
            }
            GateDiff::Changed(k, b, m) => write!(f, "{k}: baseline {b}, measured {m}"),
            GateDiff::Increased(k, b, m) => write!(
                f,
                "{k}: baseline {b}, measured {m} (+{}) — allocation regression",
                m - b
            ),
            GateDiff::Improved(k, b, m) => write!(
                f,
                "{k}: baseline {b}, measured {m} (-{}) — improvement; \
                 run `cargo xtask bench-gate --update` to absorb it",
                b - m
            ),
        }
    }
}

/// The deterministic subtree, flattened to `section.key → value`.
type Counters = BTreeMap<String, u64>;

/// Extracts the deterministic counters from a parsed report.
///
/// Accepts either a full `bench-report` document (the subtree lives at
/// `metrics.deterministic`) or a bare baseline document (the subtree
/// *is* the document).
///
/// # Errors
///
/// Returns a message naming the missing or mistyped key when the
/// document does not carry the expected shape.
pub fn deterministic_counters(doc: &Value) -> Result<Counters, String> {
    let det = doc
        .get("metrics")
        .and_then(|m| m.get("deterministic"))
        .or_else(|| {
            // A baseline file is the deterministic object itself.
            doc.get("counters").is_some().then_some(doc)
        })
        .ok_or("no `metrics.deterministic` subtree (and not a baseline document)")?;
    let mut flat = Counters::new();
    for section in ["counters", "gauges"] {
        let obj = det
            .get(section)
            .ok_or_else(|| format!("deterministic subtree lacks `{section}`"))?;
        let entries = obj
            .entries()
            .ok_or_else(|| format!("`{section}` is not an object"))?;
        for (key, value) in entries {
            let n = value
                .as_u64()
                .ok_or_else(|| format!("`{section}.{key}` is not a u64"))?;
            flat.insert(format!("{section}.{key}"), n);
        }
    }
    Ok(flat)
}

/// Compares measured counters against the baseline.
#[must_use]
pub fn compare(baseline: &Counters, measured: &Counters) -> Vec<GateDiff> {
    let mut diffs = Vec::new();
    for (key, &b) in baseline {
        match measured.get(key) {
            None => diffs.push(GateDiff::Missing(key.clone(), b)),
            Some(&m) if m == b => {}
            Some(&m) => {
                // Strip the `counters.`/`gauges.` section prefix.
                let name = key.split_once('.').map_or(key.as_str(), |(_, k)| k);
                if name.starts_with(INCREASE_ONLY_PREFIX) {
                    if m > b {
                        diffs.push(GateDiff::Increased(key.clone(), b, m));
                    } else {
                        diffs.push(GateDiff::Improved(key.clone(), b, m));
                    }
                } else {
                    diffs.push(GateDiff::Changed(key.clone(), b, m));
                }
            }
        }
    }
    for (key, &m) in measured {
        if !baseline.contains_key(key) {
            diffs.push(GateDiff::Unexpected(key.clone(), m));
        }
    }
    diffs
}

/// Renders the baseline file: the deterministic subtree of `doc`,
/// verbatim, plus a provenance comment field.
///
/// # Errors
///
/// As for [`deterministic_counters`]: the document must carry a
/// `metrics.deterministic` subtree.
pub fn render_baseline(doc: &Value) -> Result<String, String> {
    let det = doc
        .get("metrics")
        .and_then(|m| m.get("deterministic"))
        .ok_or("no `metrics.deterministic` subtree in the smoke report")?;
    let mut out = String::new();
    det.write(&mut out);
    out.push('\n');
    Ok(out)
}

/// Loads and parses a JSON file into the flattened counter map.
///
/// # Errors
///
/// Propagates I/O, parse and shape failures as user-facing messages.
pub fn load_counters(path: &Path) -> Result<Counters, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Value::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    deterministic_counters(&doc)
}

/// Formats the comparison outcome for terminal output. Returns
/// `(report, clean)`.
#[must_use]
pub fn report(diffs: &[GateDiff]) -> (String, bool) {
    let mut out = String::new();
    let failures = diffs.iter().filter(|d| d.is_failure()).count();
    for d in diffs {
        let tag = if d.is_failure() { "FAIL" } else { "note" };
        let _ = writeln!(out, "  [{tag}] {d}");
    }
    if failures == 0 {
        let _ = writeln!(
            out,
            "bench-gate: deterministic counters match the baseline ({} note(s))",
            diffs.len()
        );
    } else {
        let _ = writeln!(
            out,
            "bench-gate: {failures} counter(s) regressed against the baseline; \
             if intentional, refresh it with `cargo xtask bench-gate --update`"
        );
    }
    (out, failures == 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(pairs: &[(&str, u64)]) -> Counters {
        pairs.iter().map(|&(k, v)| (k.to_owned(), v)).collect()
    }

    #[test]
    fn extracts_counters_from_full_report() {
        let doc = Value::parse(
            r#"{"pr":4,"metrics":{"deterministic":{"counters":{"par.items":10,"alloc.x":5},
                "gauges":{"crawl.frontier_peak":3}},"timing":{"sched":{},"spans":[]}}}"#,
        )
        .unwrap();
        let flat = deterministic_counters(&doc).unwrap();
        assert_eq!(flat.get("counters.par.items"), Some(&10));
        assert_eq!(flat.get("counters.alloc.x"), Some(&5));
        assert_eq!(flat.get("gauges.crawl.frontier_peak"), Some(&3));
    }

    #[test]
    fn extracts_counters_from_baseline_document() {
        let doc = Value::parse(r#"{"counters":{"a":1},"gauges":{}}"#).unwrap();
        let flat = deterministic_counters(&doc).unwrap();
        assert_eq!(flat.get("counters.a"), Some(&1));
    }

    #[test]
    fn rejects_malformed_documents() {
        let doc = Value::parse(r#"{"metrics":{}}"#).unwrap();
        assert!(deterministic_counters(&doc).is_err());
        let doc = Value::parse(r#"{"counters":{"a":-1},"gauges":{}}"#).unwrap();
        assert!(deterministic_counters(&doc).is_err());
    }

    #[test]
    fn exact_keys_fail_on_any_drift() {
        let base = counters(&[("counters.par.items", 10)]);
        let meas = counters(&[("counters.par.items", 9)]);
        let diffs = compare(&base, &meas);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].is_failure());
        assert!(diffs[0].to_string().contains("baseline 10, measured 9"));
    }

    #[test]
    fn alloc_keys_fail_only_on_increase() {
        let base = counters(&[("counters.alloc.stage", 100)]);
        let up = compare(&base, &counters(&[("counters.alloc.stage", 101)]));
        assert!(up[0].is_failure());
        assert!(up[0].to_string().contains("regression"));
        let down = compare(&base, &counters(&[("counters.alloc.stage", 99)]));
        assert!(!down[0].is_failure());
        assert!(down[0].to_string().contains("improvement"));
        let same = compare(&base, &counters(&[("counters.alloc.stage", 100)]));
        assert!(same.is_empty());
    }

    #[test]
    fn missing_and_unexpected_keys_fail_both_ways() {
        let base = counters(&[("counters.gone", 1)]);
        let meas = counters(&[("counters.new", 2)]);
        let diffs = compare(&base, &meas);
        assert_eq!(diffs.len(), 2);
        assert!(diffs.iter().all(GateDiff::is_failure));
    }

    #[test]
    fn report_summarizes_cleanly() {
        let (text, clean) = report(&[]);
        assert!(clean);
        assert!(text.contains("match the baseline"));
        let diffs = vec![GateDiff::Increased("counters.alloc.x".into(), 1, 2)];
        let (text, clean) = report(&diffs);
        assert!(!clean);
        assert!(text.contains("[FAIL]"));
        assert!(text.contains("--update"));
    }

    #[test]
    fn baseline_round_trips_through_render() {
        let doc =
            Value::parse(r#"{"metrics":{"deterministic":{"counters":{"a":1},"gauges":{"b":2}}}}"#)
                .unwrap();
        let rendered = render_baseline(&doc).unwrap();
        let reparsed = Value::parse(rendered.trim()).unwrap();
        let flat = deterministic_counters(&reparsed).unwrap();
        assert_eq!(flat.get("counters.a"), Some(&1));
        assert_eq!(flat.get("gauges.b"), Some(&2));
    }
}
