//! File discovery and the check driver.
//!
//! The driver merges three layers of findings: the token-level rules
//! ([`crate::rules`]), the per-file analysis passes
//! ([`crate::analysis::passes`]) and the workspace-level passes
//! (layer DAG, allowlist staleness). Per-file work runs on the
//! `tagdist-par` pool and an optional content-hash cache skips
//! unchanged files on warm runs; neither changes the output — the
//! final report is sorted by (path, line, rule) and byte-identical at
//! any thread count.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use tagdist_par::Pool;

use crate::allowlist::AllowList;
use crate::analysis::cache::{fnv1a, AnalysisCache};
use crate::analysis::{modgraph, parse, passes, token, ALL_RULES};
use crate::lexer;
use crate::rules::{self, Violation};

/// Library crates the domain rules apply to: every one forbids
/// `unsafe` (`#![forbid(unsafe_code)]`, or `deny` in `dataset` and
/// `serve`, whose sanctioned `mmap`/`signal` modules the
/// `unsafe-scope` rule audits). Binary/bench crates (cli, bench) are
/// intentionally out of scope — they may exit or panic at the top
/// level. The xtask sources themselves are scanned by the analysis
/// passes (but not the library-only token rules).
pub const CHECKED_CRATES: &[&str] = &[
    "cache",
    "core",
    "crawler",
    "dataset",
    "geo",
    "obs",
    "par",
    "reconstruct",
    "serve",
    "tags",
    "ytsim",
];

/// Driver knobs; [`CheckConfig::default`] means no cache and the
/// `TAGDIST_THREADS` pool.
#[derive(Debug, Clone, Default)]
pub struct CheckConfig {
    /// Analysis-cache file; `None` disables caching.
    pub cache_path: Option<PathBuf>,
    /// Worker threads; `None` reads `TAGDIST_THREADS`.
    pub threads: Option<usize>,
}

/// Result of a full tree check.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Every finding (allowed ones included), sorted by path then
    /// line.
    pub violations: Vec<Violation>,
    /// Cache lookups answered without re-analysis (0 without a cache).
    pub cache_hits: usize,
    /// Cache lookups that re-analyzed the file.
    pub cache_misses: usize,
}

impl CheckOutcome {
    /// Findings not covered by the allowlist.
    pub fn active(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.allowed)
    }

    /// Number of active findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Number of allowlist-suppressed findings.
    pub fn allowed_count(&self) -> usize {
        self.violations.iter().filter(|v| v.allowed).count()
    }

    /// True when nothing (unsuppressed) was found.
    pub fn is_clean(&self) -> bool {
        self.active_count() == 0
    }
}

/// Runs the token rules (when in scope for the path) and the analysis
/// passes over one source text. Pure; safe to fan out.
fn analyze_source(path_label: &str, source: &str, token_rules: bool) -> Vec<Violation> {
    let cf = lexer::clean(source);
    let mut violations = if token_rules {
        rules::check_file(path_label, &cf)
    } else {
        Vec::new()
    };
    let sf = parse::parse(token::tokenize(&cf.code));
    violations.extend(passes::run_file_passes(path_label, &cf, &sf));
    violations.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    violations
}

/// The xtask sources are tooling: scanned by the determinism passes,
/// exempt from the library-only token rules.
fn token_rules_apply(path_label: &str) -> bool {
    !path_label.starts_with("crates/xtask/")
}

/// Checks one in-memory file against every rule and the allowlist.
pub fn check_source(path_label: &str, source: &str, allow: &AllowList) -> Vec<Violation> {
    let mut violations = analyze_source(path_label, source, token_rules_apply(path_label));
    for v in &mut violations {
        v.allowed = allow.covers(v);
    }
    violations
}

/// Checks every library source file under `root` (the workspace root)
/// with the default configuration (no cache).
///
/// # Errors
///
/// Propagates I/O errors from reading the tree; a missing crate
/// directory is an error (the scope list and the workspace must stay
/// in sync).
pub fn check_workspace(root: &Path, allow: &AllowList) -> io::Result<CheckOutcome> {
    check_workspace_with(root, allow, &CheckConfig::default())
}

/// [`check_workspace`] with explicit cache/thread configuration.
///
/// # Errors
///
/// Propagates I/O errors from reading the tree (a stale or unwritable
/// cache is never an error — the cache degrades to a no-op).
pub fn check_workspace_with(
    root: &Path,
    allow: &AllowList,
    config: &CheckConfig,
) -> io::Result<CheckOutcome> {
    let mut files = Vec::new();
    for krate in CHECKED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("expected library source tree at {}", src.display()),
            ));
        }
        collect_rs_files(&src, &mut files)?;
    }
    // Self-analysis: xtask participates when present (fixture trees
    // model only the library crates).
    let xtask_src = root.join("crates").join("xtask").join("src");
    if xtask_src.is_dir() {
        collect_rs_files(&xtask_src, &mut files)?;
    }
    files.sort();

    struct Input {
        label: String,
        source: String,
        hash: u64,
    }
    let mut inputs = Vec::with_capacity(files.len());
    for file in &files {
        let source = fs::read_to_string(file)?;
        let label = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let hash = fnv1a(source.as_bytes());
        inputs.push(Input {
            label,
            source,
            hash,
        });
    }

    let mut cache = config
        .cache_path
        .as_deref()
        .map(|p| AnalysisCache::load(p, ALL_RULES));
    let mut per_file: Vec<Option<Vec<Violation>>> = inputs
        .iter()
        .map(|inp| cache.as_mut().and_then(|c| c.lookup(&inp.label, inp.hash)))
        .collect();
    let pending: Vec<usize> = per_file
        .iter()
        .enumerate()
        .filter_map(|(i, v)| v.is_none().then_some(i))
        .collect();

    let pool = match config.threads {
        Some(t) => Pool::new(t),
        None => Pool::from_env(),
    };
    let computed = pool.par_map(&pending, |_, &idx| {
        let inp = &inputs[idx];
        analyze_source(&inp.label, &inp.source, token_rules_apply(&inp.label))
    });
    for (&idx, violations) in pending.iter().zip(&computed) {
        if let Some(c) = cache.as_mut() {
            c.store(&inputs[idx].label, inputs[idx].hash, violations);
        }
    }
    for (idx, violations) in pending.into_iter().zip(computed) {
        per_file[idx] = Some(violations);
    }
    let (cache_hits, cache_misses) = cache.as_ref().map_or((0, 0), |c| (c.hits, c.misses));
    if let (Some(c), Some(p)) = (&cache, config.cache_path.as_deref()) {
        // Best-effort: an unwritable cache only costs the next warm run.
        let _ = c.save(p);
    }

    let mut outcome = CheckOutcome {
        files_checked: inputs.len(),
        violations: per_file.into_iter().flatten().flatten().collect(),
        cache_hits,
        cache_misses,
    };
    outcome
        .violations
        .extend(modgraph::check_layers(root, &modgraph::workspace_spec())?);
    finish(&mut outcome, allow);
    Ok(outcome)
}

/// Checks an explicit list of files (used by the fixture tests).
///
/// # Errors
///
/// Propagates I/O errors from reading the files.
pub fn check_files(root: &Path, files: &[PathBuf], allow: &AllowList) -> io::Result<CheckOutcome> {
    let mut outcome = CheckOutcome::default();
    for file in files {
        let source = fs::read_to_string(file)?;
        let label = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        outcome
            .violations
            .extend(analyze_source(&label, &source, token_rules_apply(&label)));
        outcome.files_checked += 1;
    }
    finish(&mut outcome, allow);
    Ok(outcome)
}

/// Applies the allowlist, appends `allow-stale` findings for entries
/// that matched nothing, and fixes the final sort order.
fn finish(outcome: &mut CheckOutcome, allow: &AllowList) {
    for v in &mut outcome.violations {
        v.allowed = allow.covers(v);
    }
    for entry in allow.entries() {
        let matched = outcome
            .violations
            .iter()
            .any(|v| AllowList::entry_covers(entry, v));
        if !matched {
            outcome.violations.push(Violation {
                rule: "allow-stale",
                path: "xtask-allow.toml".to_owned(),
                line: entry.line,
                snippet: format!("rule = \"{}\", path = \"{}\"", entry.rule, entry.path),
                message: "allowlist entry matches no current finding; prune it \
                          (the violation it sanctioned is gone)"
                    .to_owned(),
                allowed: false,
            });
        }
    }
    outcome.violations.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.rule.cmp(b.rule))
    });
}

/// Recursively gathers `.rs` files.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads `xtask-allow.toml` from the workspace root, tolerating its
/// absence.
///
/// # Errors
///
/// Returns a descriptive error when the file exists but cannot be
/// read or parsed.
pub fn load_allowlist(root: &Path) -> Result<AllowList, String> {
    let path = root.join("xtask-allow.toml");
    if !path.exists() {
        return Ok(AllowList::empty());
    }
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    AllowList::parse(&text).map_err(|e| e.to_string())
}
