//! File discovery and the check driver.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::allowlist::AllowList;
use crate::lexer;
use crate::rules::{self, Violation};

/// Library crates the domain rules apply to: the workspace's
/// `#![forbid(unsafe_code)]` members. Binary/bench/tooling crates
/// (cli, bench, xtask) are intentionally out of scope — they may
/// exit or panic at the top level.
pub const CHECKED_CRATES: &[&str] = &[
    "cache",
    "core",
    "crawler",
    "dataset",
    "geo",
    "obs",
    "par",
    "reconstruct",
    "tags",
    "ytsim",
];

/// Result of a full tree check.
#[derive(Debug, Clone, Default)]
pub struct CheckOutcome {
    /// Number of `.rs` files scanned.
    pub files_checked: usize,
    /// Every finding (allowed ones included), sorted by path then
    /// line.
    pub violations: Vec<Violation>,
}

impl CheckOutcome {
    /// Findings not covered by the allowlist.
    pub fn active(&self) -> impl Iterator<Item = &Violation> {
        self.violations.iter().filter(|v| !v.allowed)
    }

    /// Number of active findings.
    pub fn active_count(&self) -> usize {
        self.active().count()
    }

    /// Number of allowlist-suppressed findings.
    pub fn allowed_count(&self) -> usize {
        self.violations.iter().filter(|v| v.allowed).count()
    }

    /// True when nothing (unsuppressed) was found.
    pub fn is_clean(&self) -> bool {
        self.active_count() == 0
    }
}

/// Checks one in-memory file against every rule and the allowlist.
pub fn check_source(path_label: &str, source: &str, allow: &AllowList) -> Vec<Violation> {
    let cf = lexer::clean(source);
    let mut violations = rules::check_file(path_label, &cf);
    for v in &mut violations {
        v.allowed = allow.covers(v);
    }
    violations
}

/// Checks every library source file under `root` (the workspace root).
///
/// # Errors
///
/// Propagates I/O errors from reading the tree; a missing crate
/// directory is an error (the scope list and the workspace must stay
/// in sync).
pub fn check_workspace(root: &Path, allow: &AllowList) -> io::Result<CheckOutcome> {
    let mut files = Vec::new();
    for krate in CHECKED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("expected library source tree at {}", src.display()),
            ));
        }
        collect_rs_files(&src, &mut files)?;
    }
    files.sort();
    check_files(root, &files, allow)
}

/// Checks an explicit list of files (used by the fixture tests).
///
/// # Errors
///
/// Propagates I/O errors from reading the files.
pub fn check_files(root: &Path, files: &[PathBuf], allow: &AllowList) -> io::Result<CheckOutcome> {
    let mut outcome = CheckOutcome::default();
    for file in files {
        let source = fs::read_to_string(file)?;
        let label = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        outcome
            .violations
            .extend(check_source(&label, &source, allow));
        outcome.files_checked += 1;
    }
    outcome
        .violations
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(outcome)
}

/// Recursively gathers `.rs` files.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Loads `xtask-allow.toml` from the workspace root, tolerating its
/// absence.
///
/// # Errors
///
/// Returns a descriptive error when the file exists but cannot be
/// read or parsed.
pub fn load_allowlist(root: &Path) -> Result<AllowList, String> {
    let path = root.join("xtask-allow.toml");
    if !path.exists() {
        return Ok(AllowList::empty());
    }
    let text =
        fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    AllowList::parse(&text).map_err(|e| e.to_string())
}
