//! Machine-readable JSON report (hand-rolled writer; the workspace
//! vendors no serde).

use crate::checker::CheckOutcome;

/// Serializes the outcome to a JSON document, deterministically
/// (violations are pre-sorted by path and line).
pub fn to_json(outcome: &CheckOutcome) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files_checked\": {},\n  \"violations_active\": {},\n  \"violations_allowed\": {},\n",
        outcome.files_checked,
        outcome.active_count(),
        outcome.allowed_count()
    ));
    out.push_str("  \"rules\": [");
    for (i, rule) in crate::analysis::ALL_RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&quote(rule));
    }
    out.push_str("],\n  \"violations\": [\n");
    for (i, v) in outcome.violations.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!(
            "\"rule\": {}, \"path\": {}, \"line\": {}, \"snippet\": {}, \"message\": {}, \"allowed\": {}",
            quote(v.rule),
            quote(&v.path),
            v.line,
            quote(&v.snippet),
            quote(&v.message),
            v.allowed
        ));
        out.push('}');
        if i + 1 < outcome.violations.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON string escaping.
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Violation;

    #[test]
    fn escapes_and_counts() {
        let outcome = CheckOutcome {
            files_checked: 2,
            violations: vec![Violation {
                rule: "no-panic",
                path: "a\\b.rs".to_owned(),
                line: 3,
                snippet: "say \"hi\"".to_owned(),
                message: "m".to_owned(),
                allowed: false,
            }],
            ..CheckOutcome::default()
        };
        let json = to_json(&outcome);
        assert!(json.contains("\"files_checked\": 2"));
        assert!(json.contains("a\\\\b.rs"));
        assert!(json.contains("say \\\"hi\\\""));
        assert!(json.contains("\"violations_active\": 1"));
    }
}
