//! The token-level domain rules `cargo xtask check` enforces.
//!
//! These complement clippy: they encode invariants of *this* codebase
//! that generic lints cannot know — the no-panic policy for library
//! crates, the epsilon-comparison convention for `f64`, the
//! `# Errors` documentation contract, and the `unsafe` opt-in
//! protocol (`unsafe-scope`). The determinism lints (wall-clock,
//! unordered-iter, unseeded-rng, float-reduction, layer-dag) need
//! dataflow context and live in [`crate::analysis::passes`] /
//! [`crate::analysis::modgraph`].

use crate::lexer::CleanFile;

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (see
    /// [`crate::analysis::ALL_RULES`]).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The trimmed source line.
    pub snippet: String,
    /// Human explanation of what the rule wants.
    pub message: String,
    /// Set when an allowlist entry suppressed the violation.
    pub allowed: bool,
}

/// The token-level rule identifiers (the analysis passes contribute
/// the rest of [`crate::analysis::ALL_RULES`]).
pub const RULES: &[&str] = &["no-panic", "float-eq", "errors-doc", "unsafe-scope"];

const PANIC_MACROS: &[&str] = &["panic!", "todo!", "unimplemented!", "unreachable!"];
const PANIC_METHODS: &[&str] = &[".unwrap()", ".unwrap_err()", ".expect(", ".expect_err("];

/// Runs every rule over one cleaned file.
pub fn check_file(path: &str, cf: &CleanFile) -> Vec<Violation> {
    let mut out = Vec::new();
    no_panic(path, cf, &mut out);
    float_eq(path, cf, &mut out);
    errors_doc(path, cf, &mut out);
    unsafe_scope(path, cf, &mut out);
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out
}

fn snippet(cf: &CleanFile, line: usize) -> String {
    cf.raw
        .get(line)
        .map_or(String::new(), |l| l.trim().to_owned())
}

/// `no-panic`: library code must not contain `unwrap`/`expect`/
/// `panic!`/`todo!`-family calls. Sites audited with
/// `#[expect(clippy::…)]` are sanctioned (the compiler verifies those
/// expectations), as are `#[cfg(test)]` modules.
fn no_panic(path: &str, cf: &CleanFile, out: &mut Vec<Violation>) {
    for (lineno, line) in cf.code.iter().enumerate() {
        if cf.in_test[lineno] || cf.sanctioned[lineno] {
            continue;
        }
        let hit = PANIC_METHODS.iter().any(|p| line.contains(p))
            || PANIC_MACROS.iter().any(|m| contains_macro(line, m));
        if hit {
            out.push(Violation {
                rule: "no-panic",
                path: path.to_owned(),
                line: lineno + 1,
                snippet: snippet(cf, lineno),
                message: "library code must propagate errors, not panic \
                          (use Result, or #[expect(clippy::…)] with a reason)"
                    .to_owned(),
                allowed: false,
            });
        }
    }
}

/// True if `line` invokes macro `name` (`name` ends with `!`) as a
/// standalone token — not as a suffix of a longer identifier.
fn contains_macro(line: &str, name: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line.get(from..).and_then(|s| s.find(name)) {
        let at = from + pos;
        let prev_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        // `#[should_panic…]` and similar attribute uses are not calls.
        let in_attr = line[..at].trim_start().starts_with("#[");
        if prev_ok && !in_attr {
            return true;
        }
        from = at + name.len();
    }
    false
}

/// `float-eq`: direct `==`/`!=` on floating-point values is forbidden;
/// use the epsilon helpers (`tagdist_geo::approx_eq`) instead. The
/// scan is heuristic: an equality operator on a line that also
/// mentions a float literal or an `f32`/`f64` type.
fn float_eq(path: &str, cf: &CleanFile, out: &mut Vec<Violation>) {
    for (lineno, line) in cf.code.iter().enumerate() {
        if cf.in_test[lineno] || cf.sanctioned[lineno] {
            continue;
        }
        if has_eq_operator(line) && mentions_float(line) {
            out.push(Violation {
                rule: "float-eq",
                path: path.to_owned(),
                line: lineno + 1,
                snippet: snippet(cf, lineno),
                message: "direct f64 equality is fragile; compare through \
                          an epsilon helper (tagdist_geo::approx_eq)"
                    .to_owned(),
                allowed: false,
            });
        }
    }
}

/// Detects a standalone `==` or `!=` (not `<=`, `>=`, `=>`, `..=`).
fn has_eq_operator(line: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    for i in 0..chars.len().saturating_sub(1) {
        let pair = (chars[i], chars[i + 1]);
        let before = i.checked_sub(1).map(|j| chars[j]);
        let after = chars.get(i + 2).copied();
        match pair {
            ('=', '=') => {
                let bad_before = matches!(
                    before,
                    Some('=')
                        | Some('<')
                        | Some('>')
                        | Some('!')
                        | Some('+')
                        | Some('-')
                        | Some('*')
                        | Some('/')
                );
                if !bad_before && after != Some('=') {
                    return true;
                }
            }
            ('!', '=') if after != Some('=') => return true,
            _ => {}
        }
    }
    false
}

fn mentions_float(line: &str) -> bool {
    if line.contains("f64") || line.contains("f32") {
        return true;
    }
    // A float literal: digit '.' digit (excludes ranges `0..n` and
    // method calls `1.max(…)`).
    let chars: Vec<char> = line.chars().collect();
    chars
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit())
}

/// `errors-doc`: every `pub fn` returning `Result` needs an
/// `# Errors` section in its doc comment (mirrors
/// `clippy::missing_errors_doc`, but also runs on fixture trees).
fn errors_doc(path: &str, cf: &CleanFile, out: &mut Vec<Violation>) {
    for (lineno, line) in cf.code.iter().enumerate() {
        if cf.in_test[lineno] || cf.sanctioned[lineno] {
            continue;
        }
        let Some(col) = find_pub_fn(line) else {
            continue;
        };
        let Some(sig) = signature_text(cf, lineno, col) else {
            continue;
        };
        let Some(ret) = sig.split_once("->").map(|(_, r)| r) else {
            continue;
        };
        if !ret.contains("Result") {
            continue;
        }
        if !docs_above(cf, lineno).contains("# Errors") {
            out.push(Violation {
                rule: "errors-doc",
                path: path.to_owned(),
                line: lineno + 1,
                snippet: snippet(cf, lineno),
                message: "public Result-returning APIs must document \
                          their failure modes under an `# Errors` heading"
                    .to_owned(),
                allowed: false,
            });
        }
    }
}

/// How many raw lines above an `unsafe` site a `// SAFETY:` comment
/// may sit (a justification block can span a few lines).
const SAFETY_COMMENT_REACH: usize = 8;

/// `unsafe-scope`: `unsafe` is forbidden in library code except inside
/// a module that explicitly opts in — a scoped `#![allow(unsafe_code)]`
/// inner attribute *and* a module-level `# Safety` doc section stating
/// the soundness argument — and even there, every `unsafe` site must
/// carry a `// SAFETY:` comment on the line or just above it. The
/// sanctioned modules today are `crates/dataset/src/mmap.rs` and
/// `crates/serve/src/signal.rs`; the allowlist stays empty because
/// compliant modules produce no findings.
fn unsafe_scope(path: &str, cf: &CleanFile, out: &mut Vec<Violation>) {
    let opted_in = cf.raw.iter().any(|l| l.trim() == "#![allow(unsafe_code)]")
        && cf.docs.iter().any(|d| d.contains("# Safety"));
    for (lineno, line) in cf.code.iter().enumerate() {
        if cf.in_test[lineno] || !contains_word(line, "unsafe") {
            continue;
        }
        if !opted_in {
            out.push(Violation {
                rule: "unsafe-scope",
                path: path.to_owned(),
                line: lineno + 1,
                snippet: snippet(cf, lineno),
                message: "`unsafe` belongs only in a module that opts in with \
                          `#![allow(unsafe_code)]` and a module-level `# Safety` \
                          argument (see crates/dataset/src/mmap.rs)"
                    .to_owned(),
                allowed: false,
            });
            continue;
        }
        if !has_safety_comment(cf, lineno) {
            out.push(Violation {
                rule: "unsafe-scope",
                path: path.to_owned(),
                line: lineno + 1,
                snippet: snippet(cf, lineno),
                message: "every `unsafe` site needs a `// SAFETY:` comment \
                          discharging the module's safety obligations"
                    .to_owned(),
                allowed: false,
            });
        }
    }
}

/// True if `line` contains `word` as a standalone token.
fn contains_word(line: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line.get(from..).and_then(|s| s.find(word)) {
        let at = from + pos;
        let prev_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let next_ok = !line[at + word.len()..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if prev_ok && next_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

/// A `// SAFETY:` comment on the line or within
/// [`SAFETY_COMMENT_REACH`] raw lines above it.
fn has_safety_comment(cf: &CleanFile, lineno: usize) -> bool {
    (lineno.saturating_sub(SAFETY_COMMENT_REACH)..=lineno)
        .any(|l| cf.raw.get(l).is_some_and(|r| r.contains("SAFETY:")))
}

/// Column of a `pub fn` token pair on this line, if any.
fn find_pub_fn(line: &str) -> Option<usize> {
    let pos = line.find("pub fn ")?;
    let prev_ok = pos == 0
        || !line[..pos]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
    prev_ok.then_some(pos)
}

/// Signature text from `pub fn` to the body `{` or trailing `;`.
fn signature_text(cf: &CleanFile, line: usize, col: usize) -> Option<String> {
    let mut sig = String::new();
    for (l, text) in cf.code.iter().enumerate().skip(line) {
        let start = if l == line { col } else { 0 };
        for c in text.get(start..)?.chars() {
            if c == '{' || c == ';' {
                return Some(sig);
            }
            sig.push(c);
        }
        sig.push(' ');
        if l > line + 40 {
            break; // malformed; bail out
        }
    }
    None
}

/// The contiguous doc-comment block directly above `line` (skipping
/// attribute lines, including multi-line attributes).
fn docs_above(cf: &CleanFile, line: usize) -> String {
    let mut collected = Vec::new();
    let mut l = line;
    while l > 0 {
        l -= 1;
        let raw = cf.raw.get(l).map_or("", |s| s.trim());
        if raw.starts_with("///") || raw.starts_with("//!") {
            collected.push(cf.docs[l].trim().to_owned());
            continue;
        }
        if raw.starts_with("#[") {
            continue;
        }
        // Walking upward through a multi-line attribute: its last line
        // ends with `]`; swallow lines until the opening `#[`.
        if raw.ends_with(']') && !raw.starts_with("//") {
            while l > 0 && !cf.raw.get(l).map_or("", |s| s.trim()).starts_with("#[") {
                l -= 1;
            }
            continue;
        }
        break;
    }
    collected.reverse();
    collected.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean;

    fn rules_hit(src: &str, path: &str) -> Vec<&'static str> {
        check_file(path, &clean(src))
            .iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn no_panic_catches_unwrap_and_macros() {
        assert_eq!(
            rules_hit("fn f() { x.unwrap(); }\n", "a.rs"),
            vec!["no-panic"]
        );
        assert_eq!(
            rules_hit("fn f() { panic!(\"no\"); }\n", "a.rs"),
            vec!["no-panic"]
        );
        assert!(rules_hit("fn f() { x.unwrap_or(0); }\n", "a.rs").is_empty());
    }

    #[test]
    fn no_panic_respects_expect_attr_and_tests() {
        let sanctioned =
            "#[expect(clippy::expect_used, reason = \"r\")]\nfn f() { x.expect(\"ok\"); }\n";
        assert!(rules_hit(sanctioned, "a.rs").is_empty());
        let test_only = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(rules_hit(test_only, "a.rs").is_empty());
    }

    #[test]
    fn float_eq_catches_literal_comparison() {
        assert_eq!(
            rules_hit("fn f(x: f64) -> bool { x == 1.5 }\n", "a.rs"),
            vec!["float-eq"]
        );
        assert!(rules_hit("fn f(x: u8) -> bool { x == 1 }\n", "a.rs").is_empty());
        assert!(rules_hit("fn f(x: f64) -> bool { x <= 1.5 }\n", "a.rs").is_empty());
    }

    #[test]
    fn unsafe_scope_rejects_unsanctioned_unsafe() {
        assert_eq!(
            rules_hit("fn f() { unsafe { do_it() } }\n", "a.rs"),
            vec!["unsafe-scope"]
        );
        // `unsafe_code` inside a lint name is not the keyword.
        assert!(rules_hit("#![deny(unsafe_code)]\nfn f() {}\n", "a.rs").is_empty());
    }

    #[test]
    fn unsafe_scope_accepts_the_opt_in_protocol() {
        let good = "//! Maps files.\n//!\n//! # Safety\n//!\n//! Sound because reasons.\n\
                    #![allow(unsafe_code)]\n\
                    fn f() {\n    // SAFETY: discharged above.\n    unsafe { do_it() }\n}\n";
        assert!(rules_hit(good, "a.rs").is_empty());
        // Opted-in module, but a site without its SAFETY comment.
        let bare = "//! # Safety\n//! Argument.\n#![allow(unsafe_code)]\n\
                    fn f() { unsafe { do_it() } }\n";
        assert_eq!(rules_hit(bare, "a.rs"), vec!["unsafe-scope"]);
        // The attribute alone (no # Safety docs) does not opt in.
        let undocumented =
            "#![allow(unsafe_code)]\nfn f() {\n    // SAFETY: trust me.\n    unsafe { do_it() }\n}\n";
        assert_eq!(rules_hit(undocumented, "a.rs"), vec!["unsafe-scope"]);
    }

    #[test]
    fn errors_doc_requires_heading() {
        let bad = "/// Does things.\npub fn f() -> Result<(), E> { Ok(()) }\n";
        assert_eq!(rules_hit(bad, "a.rs"), vec!["errors-doc"]);
        let good = "/// Does things.\n///\n/// # Errors\n///\n/// Never.\npub fn f() -> Result<(), E> { Ok(()) }\n";
        assert!(rules_hit(good, "a.rs").is_empty());
        let not_result = "/// Plain.\npub fn f() -> u32 { 0 }\n";
        assert!(rules_hit(not_result, "a.rs").is_empty());
    }
}
