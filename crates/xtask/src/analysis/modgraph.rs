//! Workspace module graph and the `layer-dag` pass.
//!
//! The workspace declares a crate-layer DAG (leaf utilities at the
//! bottom, binaries on top). This pass validates the *declared*
//! `Cargo.toml` dependency edges and the *actual* `use`/path edges in
//! source against that DAG, reporting:
//!
//! - layering violations (an edge to the same or a higher layer),
//! - dependency cycles among the declared edges,
//! - declared dependencies with no source reference (dead edges),
//! - source references to workspace crates that are not declared.
//!
//! `[dev-dependencies]` satisfy the declaration check but are exempt
//! from layering (the obs ⇄ par test cycle is documented and legal).

use std::fs;
use std::io;
use std::path::Path;

use crate::lexer;
use crate::rules::Violation;

/// One crate in the declared layer DAG.
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// Cargo package name (`tagdist-geo`, `xtask`, …).
    pub package: String,
    /// Directory relative to the workspace root.
    pub dir: String,
    /// Layer index; an edge must always point to a strictly lower
    /// layer.
    pub layer: u32,
}

fn spec(package: &str, dir: &str, layer: u32) -> LayerSpec {
    LayerSpec {
        package: package.to_owned(),
        dir: dir.to_owned(),
        layer,
    }
}

/// The declared DAG for this workspace.
///
/// Layer 0 holds the dependency-free substrates, layer 4 the facade
/// crate, layer 5 the serving layer and tooling, layer 6 the binaries
/// that compose everything. `cargo xtask check` fails when reality
/// drifts from this list.
pub fn workspace_spec() -> Vec<LayerSpec> {
    vec![
        spec("tagdist-obs", "crates/obs", 0),
        spec("tagdist-geo", "crates/geo", 0),
        spec("tagdist-par", "crates/par", 1),
        spec("tagdist-dataset", "crates/dataset", 1),
        spec("tagdist-ytsim", "crates/ytsim", 1),
        spec("tagdist-crawler", "crates/crawler", 2),
        spec("tagdist-reconstruct", "crates/reconstruct", 2),
        spec("tagdist-cache", "crates/cache", 2),
        spec("tagdist-tags", "crates/tags", 3),
        spec("tagdist", "crates/core", 4),
        spec("tagdist-serve", "crates/serve", 5),
        spec("xtask", "crates/xtask", 5),
        spec("tagdist-cli", "crates/cli", 6),
        spec("tagdist-bench", "crates/bench", 6),
    ]
}

/// A dependency declaration found in a manifest.
#[derive(Debug, Clone)]
struct DeclaredDep {
    name: String,
    line: usize,
    dev: bool,
}

/// Parses the `[dependencies]` / `[dev-dependencies]` tables of a
/// manifest (TOML subset: one dependency per line).
fn parse_manifest_deps(text: &str) -> Vec<DeclaredDep> {
    let mut out = Vec::new();
    let mut section: Option<bool> = None; // Some(dev?)
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[dependencies]" => Some(false),
                "[dev-dependencies]" => Some(true),
                _ => None,
            };
            continue;
        }
        let Some(dev) = section else { continue };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: String = line
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if !name.is_empty() {
            out.push(DeclaredDep {
                name,
                line: i + 1,
                dev,
            });
        }
    }
    out
}

/// Rust identifier a package is referred to by in source.
fn ident_of(package: &str) -> String {
    package.replace('-', "_")
}

/// Word-bounded occurrences of `ident` in a line.
fn mentions_ident(line: &str, ident: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line.get(from..).and_then(|s| s.find(ident)) {
        let at = from + pos;
        let prev_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + ident.len();
        let next_ok = !line[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if prev_ok && next_ok {
            return true;
        }
        from = at + ident.len().max(1);
    }
    false
}

/// Source references from one crate to workspace packages.
#[derive(Debug, Clone, Default)]
struct UseEdges {
    /// `(package index, file, line)` on non-test lines.
    in_lib: Vec<(usize, String, usize)>,
    /// Package indices referenced anywhere (tests included).
    anywhere: Vec<usize>,
}

/// Scans every `.rs` file under a crate directory for references to
/// the given packages.
fn scan_use_edges(root: &Path, crate_dir: &Path, specs: &[LayerSpec]) -> io::Result<UseEdges> {
    let idents: Vec<String> = specs.iter().map(|s| ident_of(&s.package)).collect();
    let mut files = Vec::new();
    collect_rs(crate_dir, &mut files)?;
    files.sort();
    let mut edges = UseEdges::default();
    for file in files {
        let source = fs::read_to_string(&file)?;
        let cf = lexer::clean(&source);
        let label = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        // Integration tests and benches are test scope wholesale; the
        // per-line flag only covers `#[cfg(test)]` modules.
        let test_file = label.contains("/tests/") || label.contains("/benches/");
        for (lineno, line) in cf.code.iter().enumerate() {
            for (pi, ident) in idents.iter().enumerate() {
                if !mentions_ident(line, ident) {
                    continue;
                }
                edges.anywhere.push(pi);
                if !test_file && !cf.in_test[lineno] {
                    edges.in_lib.push((pi, label.clone(), lineno + 1));
                }
            }
        }
    }
    edges.anywhere.sort_unstable();
    edges.anywhere.dedup();
    Ok(edges)
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
        if path.is_dir() {
            if name.as_deref() == Some("target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn violation(path: String, line: usize, snippet: String, message: String) -> Violation {
    Violation {
        rule: "layer-dag",
        path,
        line,
        snippet,
        message,
        allowed: false,
    }
}

/// Validates the declared layer DAG against the tree under `root`.
///
/// Crates whose directory is missing are skipped, so the pass is a
/// no-op on fixture trees that do not model the full workspace.
///
/// # Errors
///
/// Propagates I/O errors from reading manifests or sources.
pub fn check_layers(root: &Path, specs: &[LayerSpec]) -> io::Result<Vec<Violation>> {
    let mut out = Vec::new();
    // Declared non-dev edges as (from, to) spec indices, for the
    // cycle scan.
    let mut dep_edges: Vec<(usize, usize)> = Vec::new();
    for (si, s) in specs.iter().enumerate() {
        let manifest_path = root.join(&s.dir).join("Cargo.toml");
        let Ok(manifest) = fs::read_to_string(&manifest_path) else {
            continue;
        };
        let manifest_label = format!("{}/Cargo.toml", s.dir);
        let manifest_lines: Vec<&str> = manifest.lines().collect();
        let deps = parse_manifest_deps(&manifest);
        let edges = scan_use_edges(root, &root.join(&s.dir), specs)?;
        for dep in &deps {
            let Some(ti) = specs.iter().position(|t| t.package == dep.name) else {
                continue; // external dependency
            };
            let t = &specs[ti];
            let snippet = manifest_lines
                .get(dep.line - 1)
                .map_or(String::new(), |l| l.trim().to_owned());
            if !dep.dev {
                dep_edges.push((si, ti));
                if t.layer >= s.layer {
                    out.push(violation(
                        manifest_label.clone(),
                        dep.line,
                        snippet.clone(),
                        format!(
                            "layering violation: {} (layer {}) must only depend on \
                             strictly lower layers, but {} is layer {}",
                            s.package, s.layer, t.package, t.layer
                        ),
                    ));
                }
                if !edges.anywhere.contains(&ti) {
                    out.push(violation(
                        manifest_label.clone(),
                        dep.line,
                        snippet,
                        format!(
                            "unused declared dependency: no source in {} references \
                             `{}`",
                            s.dir,
                            ident_of(&t.package)
                        ),
                    ));
                }
            }
        }
        // Non-test source references must be declared (dev or not) and
        // must themselves respect layering when outside dev scope.
        let mut seen: Vec<usize> = Vec::new();
        for (ti, file, line) in &edges.in_lib {
            if *ti == si || seen.contains(ti) {
                continue;
            }
            seen.push(*ti);
            let t = &specs[*ti];
            let declared = deps.iter().any(|d| d.name == t.package);
            if !declared {
                out.push(violation(
                    file.clone(),
                    *line,
                    String::new(),
                    format!(
                        "undeclared workspace dependency: {} references `{}` but \
                         {}/Cargo.toml does not declare {}",
                        s.package,
                        ident_of(&t.package),
                        s.dir,
                        t.package
                    ),
                ));
            }
            let dev_only = deps.iter().all(|d| d.name != t.package || d.dev);
            if t.layer >= s.layer && !dev_only {
                // Already reported at the manifest line; skip the
                // per-file duplicate.
            } else if t.layer >= s.layer && dev_only {
                out.push(violation(
                    file.clone(),
                    *line,
                    String::new(),
                    format!(
                        "layering violation: non-test code in {} (layer {}) reaches \
                         `{}` (layer {}) through a dev-dependency",
                        s.package,
                        s.layer,
                        ident_of(&t.package),
                        t.layer
                    ),
                ));
            }
        }
    }
    out.extend(find_cycles(specs, &dep_edges));
    out.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(out)
}

/// Reports each dependency cycle among declared edges once, anchored
/// at its lexicographically smallest member.
fn find_cycles(specs: &[LayerSpec], edges: &[(usize, usize)]) -> Vec<Violation> {
    let n = specs.len();
    let mut out = Vec::new();
    let mut reported: Vec<Vec<usize>> = Vec::new();
    // DFS from every node; the graph is tiny.
    for start in 0..n {
        let mut stack = vec![(start, vec![start])];
        while let Some((node, path)) = stack.pop() {
            for &(f, t) in edges {
                if f != node {
                    continue;
                }
                if t == start && path.len() > 1 {
                    let mut cycle = path.clone();
                    let mut normalized = cycle.clone();
                    normalized.sort_unstable();
                    if reported.contains(&normalized) || cycle.iter().min() != Some(&start) {
                        continue;
                    }
                    reported.push(normalized);
                    cycle.push(start);
                    let names: Vec<&str> =
                        cycle.iter().map(|&i| specs[i].package.as_str()).collect();
                    out.push(violation(
                        format!("{}/Cargo.toml", specs[start].dir),
                        1,
                        String::new(),
                        format!("dependency cycle: {}", names.join(" -> ")),
                    ));
                } else if !path.contains(&t) {
                    let mut next = path.clone();
                    next.push(t);
                    stack.push((t, next));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_deps_are_parsed_with_sections() {
        let deps = parse_manifest_deps(
            "[package]\nname = \"x\"\n\n[dependencies]\ntagdist-geo.workspace = true\n\
             rand.workspace = true\n\n[dev-dependencies]\nproptest.workspace = true\n",
        );
        let names: Vec<(&str, bool)> = deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            vec![("tagdist-geo", false), ("rand", false), ("proptest", true)]
        );
        assert_eq!(deps[0].line, 5);
    }

    #[test]
    fn ident_matching_is_word_bounded() {
        assert!(mentions_ident("use tagdist_geo::Country;", "tagdist_geo"));
        assert!(!mentions_ident("use tagdist_geo::Country;", "tagdist"));
        assert!(!mentions_ident("let my_tagdist_geo = 1;", "tagdist_geo"));
    }

    #[test]
    fn cycles_are_reported_once() {
        let specs = vec![spec("a", "crates/a", 0), spec("b", "crates/b", 0)];
        let out = find_cycles(&specs, &[(0, 1), (1, 0)]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("a -> b -> a"));
    }

    #[test]
    fn workspace_spec_is_a_dag_on_paper() {
        let specs = workspace_spec();
        // Layer indices are the proof: the declared list must use every
        // layer 0..=6 and contain no duplicate packages.
        let mut names: Vec<&str> = specs.iter().map(|s| s.package.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
        for layer in 0..=6 {
            assert!(specs.iter().any(|s| s.layer == layer));
        }
    }
}
