//! The per-file determinism passes.
//!
//! Each pass walks the parsed [`SourceFile`] (plus the cleaned line
//! classification from the lexer) and reports [`Violation`]s using the
//! same shape as the token-level rules, so the allowlist, JSON report
//! and exit-code contract apply unchanged.
//!
//! Known limitations, accepted deliberately: chains inside call
//! arguments of another chain are not extracted (the tokens are
//! consumed as argument text), and compound assignments (`total += v`)
//! inside hash-iteration loops are invisible — the float-reduction
//! pass covers the common `sum`/`fold` idioms instead.

use crate::analysis::parse::{Body, FnItem, SourceFile};
use crate::lexer::CleanFile;
use crate::rules::Violation;

/// Rule identifiers contributed by the analysis pipeline (the
/// workspace-level `layer-dag` and `allow-stale` passes live in
/// [`crate::analysis::modgraph`] and the driver).
pub const FILE_PASS_RULES: &[&str] = &[
    "float-reduction",
    "unordered-iter",
    "unseeded-rng",
    "wall-clock",
];

/// Paths (suffix or component match) where wall-clock time is part of
/// the module's contract: the span recorder, the benchmark harness,
/// the serve load generator (latency percentiles), and the analyzer's
/// own self-timing module.
const WALL_CLOCK_ALLOWED: &[&str] = &[
    "crates/obs/src/recorder.rs",
    "crates/serve/src/loadgen.rs",
    "crates/xtask/src/selfbench.rs",
];
const WALL_CLOCK_ALLOWED_DIRS: &[&str] = &["crates/bench/"];

/// The vetted order-fixed reduction helpers live here; the pass must
/// not flag its own implementation.
const FLOAT_KERNEL_PATH: &str = "geo/src/kernel.rs";

/// Iterator-producing methods on hash containers.
const ITER_CALLS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Adapters that preserve the (arbitrary) element order without
/// consuming it — walking through them keeps the chain suspect.
const ADAPTERS: &[&str] = &[
    "map",
    "filter",
    "filter_map",
    "copied",
    "cloned",
    "flat_map",
    "flatten",
    "inspect",
    "by_ref",
];

/// Terminals whose result does not depend on element order (integer
/// `sum` included — order-sensitive float sums are the
/// `float-reduction` pass's job).
const INSENSITIVE_TERMINALS: &[&str] = &[
    "count",
    "sum",
    "product",
    "max",
    "min",
    "max_by",
    "max_by_key",
    "min_by",
    "min_by_key",
    "all",
    "any",
];

/// Collect targets that neutralize arbitrary order: keyed or
/// self-ordering containers.
const ORDERED_COLLECT_MARKERS: &[&str] =
    &["BTreeMap", "BTreeSet", "BinaryHeap", "HashMap", "HashSet"];

/// Sort-family methods: a binding passed through one of these is
/// considered order-fixed afterwards.
const SORT_CALLS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Methods that read their receiver without order-sensitive effects
/// (or mutate it per-key): safe inside a hash-iteration loop body.
const PURE_METHODS: &[&str] = &[
    "abs",
    "and_then",
    "as_ref",
    "as_slice",
    "as_str",
    "ceil",
    "checked_add",
    "checked_div",
    "checked_sub",
    "clone",
    "cloned",
    "contains",
    "contains_key",
    "copied",
    "ends_with",
    "floor",
    "get",
    "get_mut",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_none",
    "is_some",
    "len",
    "map",
    "map_or",
    "max",
    "min",
    "ok",
    "powf",
    "powi",
    "round",
    "saturating_add",
    "saturating_mul",
    "saturating_sub",
    "sqrt",
    "starts_with",
    "to_owned",
    "to_string",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "wrapping_add",
];

/// Type markers for keyed containers: accumulating into one of these
/// inside a hash loop is order-insensitive (last-write-wins per key).
const KEYED_MARKERS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet"];
const HASH_MARKERS: &[&str] = &["HashMap", "HashSet"];

/// Runs every per-file pass; returned violations are sorted by
/// (line, rule).
pub fn run_file_passes(path: &str, cf: &CleanFile, sf: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    wall_clock(path, cf, sf, &mut out);
    unseeded_rng(path, cf, sf, &mut out);
    float_reduction(path, cf, sf, &mut out);
    unordered_iter(path, cf, sf, &mut out);
    out.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(b.rule)));
    out.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    out
}

fn snippet(cf: &CleanFile, line1: usize) -> String {
    cf.raw
        .get(line1.wrapping_sub(1))
        .map_or(String::new(), |l| l.trim().to_owned())
}

/// Test or `#[expect]`-sanctioned lines are out of scope for every
/// pass.
fn excluded(cf: &CleanFile, line1: usize) -> bool {
    let idx = line1.wrapping_sub(1);
    cf.in_test.get(idx).copied().unwrap_or(true) || cf.sanctioned.get(idx).copied().unwrap_or(true)
}

fn push(
    out: &mut Vec<Violation>,
    rule: &'static str,
    path: &str,
    cf: &CleanFile,
    line1: usize,
    message: String,
) {
    out.push(Violation {
        rule,
        path: path.to_owned(),
        line: line1,
        snippet: snippet(cf, line1),
        message,
        allowed: false,
    });
}

/// `wall-clock`: `Instant::now()` / `SystemTime` outside the recorder
/// and bench modules. Library code takes the virtual clock instead.
fn wall_clock(path: &str, cf: &CleanFile, sf: &SourceFile, out: &mut Vec<Violation>) {
    if WALL_CLOCK_ALLOWED.iter().any(|p| path.ends_with(p))
        || WALL_CLOCK_ALLOWED_DIRS.iter().any(|d| path.contains(d))
    {
        return;
    }
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if excluded(cf, t.line) {
            continue;
        }
        let hit = t.is_ident("SystemTime")
            || (t.is_ident("Instant")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("now")));
        if hit {
            push(
                out,
                "wall-clock",
                path,
                cf,
                t.line,
                "wall-clock time is nondeterministic; take the virtual clock \
                 (obs::recorder and bench own the only real timers)"
                    .to_owned(),
            );
        }
    }
}

/// `unseeded-rng`: ambient randomness sources in deterministic paths.
fn unseeded_rng(path: &str, cf: &CleanFile, sf: &SourceFile, out: &mut Vec<Violation>) {
    let toks = &sf.tokens;
    for (i, t) in toks.iter().enumerate() {
        if excluded(cf, t.line) {
            continue;
        }
        let hit = t.is_ident("thread_rng")
            || t.is_ident("ThreadRng")
            || t.is_ident("RandomState")
            || t.is_ident("from_entropy")
            || (t.is_ident("rand")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 2).is_some_and(|t| t.is_ident("random")));
        if hit {
            push(
                out,
                "unseeded-rng",
                path,
                cf,
                t.line,
                "ambient randomness breaks reproducibility; construct a \
                 seeded StdRng from the run seed instead"
                    .to_owned(),
            );
        }
    }
}

/// `float-reduction`: order-sensitive `f64`/`f32` `sum`/`product`/
/// `fold` outside the vetted `geo::kernel` helpers. Summation order
/// changes the result in the last bits, which violates byte-identical
/// output once thread counts or chunk sizes vary.
fn float_reduction(path: &str, cf: &CleanFile, sf: &SourceFile, out: &mut Vec<Violation>) {
    if path.ends_with(FLOAT_KERNEL_PATH) {
        return;
    }
    sf.for_each_fn(|item, f| {
        if item.is_test {
            return;
        }
        let Some(body) = f.body.as_ref() else { return };
        for (idx, chain) in body.chains.iter().enumerate() {
            for call in &chain.calls {
                if excluded(cf, call.line) {
                    continue;
                }
                let float_typed = |text: &str| text.contains("f64") || text.contains("f32");
                let flagged = match call.name.as_str() {
                    "sum" | "product" => {
                        float_typed(&call.turbofish)
                            || (call.turbofish.is_empty()
                                && body
                                    .lets
                                    .iter()
                                    .any(|l| l.init_chain == Some(idx) && float_typed(&l.ty)))
                    }
                    "fold" => {
                        let order_free =
                            call.args.contains(":: max") || call.args.contains(":: min");
                        !order_free && (float_typed(&call.args) || has_float_literal(&call.args))
                    }
                    _ => false,
                };
                if flagged {
                    push(
                        out,
                        "float-reduction",
                        path,
                        cf,
                        call.line,
                        "float summation order must be fixed; route through \
                         tagdist_geo::kernel (sum/dot/norm) instead of ad-hoc \
                         sum/fold"
                            .to_owned(),
                    );
                }
            }
        }
    });
}

fn has_float_literal(text: &str) -> bool {
    let chars: Vec<char> = text.chars().collect();
    chars
        .windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit())
}

/// `unordered-iter`: hash-container iteration whose results feed
/// returns, accumulators or output writes, unless the order is fixed
/// afterwards (sorted collect, keyed destination, or an
/// order-insensitive terminal). This is the AST upgrade of the old
/// token-level `hash-iter` rule.
fn unordered_iter(path: &str, cf: &CleanFile, sf: &SourceFile, out: &mut Vec<Violation>) {
    let hash_fields = sf.fields_typed(HASH_MARKERS);
    let keyed_fields = sf.fields_typed(KEYED_MARKERS);
    sf.for_each_fn(|item, f| {
        if item.is_test {
            return;
        }
        let Some(body) = f.body.as_ref() else { return };
        let ctx = FnCtx::build(f, body, cf, &hash_fields, &keyed_fields);
        check_chains(path, cf, sf, body, &ctx, out);
        check_for_loops(path, cf, sf, body, &ctx, out);
    });
}

/// Per-function naming context for the unordered-iter pass.
struct FnCtx {
    /// Bases known to be hash containers (`m`, `self . index`, …).
    hash_bases: Vec<String>,
    /// Bases known to be keyed containers (hash or btree).
    keyed_bases: Vec<String>,
    /// Bases passed through a sort-family call somewhere in the body.
    sorted_bases: Vec<String>,
}

impl FnCtx {
    fn build(
        f: &FnItem,
        body: &Body,
        cf: &CleanFile,
        hash_fields: &[String],
        keyed_fields: &[String],
    ) -> FnCtx {
        let mut hash_bases = Vec::new();
        let mut keyed_bases = Vec::new();
        // Parameters: render() guarantees single-space separation, so
        // word-level scanning recovers `name : … HashMap < … >` pairs.
        collect_param_bases(&f.params, HASH_MARKERS, &mut hash_bases);
        collect_param_bases(&f.params, KEYED_MARKERS, &mut keyed_bases);
        // Let bindings: annotated type, or a container constructor on
        // the binding's source line.
        for l in &body.lets {
            let line_text = cf.code.get(l.line.wrapping_sub(1)).map_or("", |s| s);
            if HASH_MARKERS
                .iter()
                .any(|m| l.ty.contains(m) || line_text.contains(m))
            {
                hash_bases.push(l.name.clone());
            }
            if KEYED_MARKERS
                .iter()
                .any(|m| l.ty.contains(m) || line_text.contains(m))
            {
                keyed_bases.push(l.name.clone());
            }
        }
        for field in hash_fields {
            hash_bases.push(format!("self . {field}"));
        }
        for field in keyed_fields {
            keyed_bases.push(format!("self . {field}"));
        }
        let mut sorted_bases: Vec<String> = body
            .chains
            .iter()
            .filter(|c| {
                c.calls
                    .iter()
                    .any(|call| SORT_CALLS.contains(&call.name.as_str()))
            })
            .map(|c| c.base.clone())
            .collect();
        for list in [&mut hash_bases, &mut keyed_bases, &mut sorted_bases] {
            list.sort();
            list.dedup();
        }
        FnCtx {
            hash_bases,
            keyed_bases,
            sorted_bases,
        }
    }

    fn is_hash(&self, base: &str) -> bool {
        self.hash_bases.iter().any(|b| b == base) || HASH_MARKERS.iter().any(|m| base.contains(m))
    }

    fn is_keyed(&self, base: &str) -> bool {
        self.keyed_bases.iter().any(|b| b == base) || KEYED_MARKERS.iter().any(|m| base.contains(m))
    }

    fn is_sorted_later(&self, base: &str) -> bool {
        self.sorted_bases.iter().any(|b| b == base)
    }
}

/// Word-scans a rendered parameter list for names typed with any of
/// the given container markers.
fn collect_param_bases(params: &str, markers: &[&str], out: &mut Vec<String>) {
    let words: Vec<&str> = params.split(' ').filter(|w| !w.is_empty()).collect();
    let mut depth = 0i32;
    let mut current: Option<&str> = None;
    let mut pending: Option<&str> = None;
    for (i, w) in words.iter().enumerate() {
        match *w {
            "<" | "(" | "[" => depth += 1,
            ">" | ")" | "]" => depth -= 1,
            ">>" => depth -= 2,
            "," if depth == 0 => current = None,
            ":" if depth == 0 => {
                current = pending;
            }
            _ => {
                if depth == 0 && words.get(i + 1).is_some_and(|n| *n == ":") {
                    pending = Some(w);
                }
                if markers.contains(w) {
                    if let Some(name) = current {
                        out.push(name.to_owned());
                    }
                }
            }
        }
    }
}

/// Method-chain iteration over hash containers.
fn check_chains(
    path: &str,
    cf: &CleanFile,
    sf: &SourceFile,
    body: &Body,
    ctx: &FnCtx,
    out: &mut Vec<Violation>,
) {
    let loop_iter_chains: Vec<usize> = body.fors.iter().map(|fl| fl.iter_chain).collect();
    for (idx, chain) in body.chains.iter().enumerate() {
        if loop_iter_chains.contains(&idx) {
            continue; // judged with its loop body below
        }
        if !ctx.is_hash(&chain.base) || excluded(cf, chain.line) {
            continue;
        }
        let Some(start) = chain
            .calls
            .iter()
            .position(|c| ITER_CALLS.contains(&c.name.as_str()))
        else {
            continue;
        };
        // Something before the iterator call (e.g. `m.get(k).iter()`)
        // means the receiver is no longer the hash container.
        if start != 0 {
            continue;
        }
        let verdict = judge_chain(&chain.calls[start + 1..], idx, body, ctx);
        if let Some(detail) = verdict {
            push(
                out,
                "unordered-iter",
                path,
                cf,
                chain.line,
                format!(
                    "hash-container iteration order is arbitrary and {detail}; \
                     sort the collected results or use a keyed/ordered container"
                ),
            );
        }
        let _ = sf; // tokens not needed here, kept for symmetry
    }
}

/// Decides whether a post-iterator call sequence launders the
/// arbitrary order. Returns a human reason when it does not.
fn judge_chain(
    calls: &[crate::analysis::parse::Call],
    chain_idx: usize,
    body: &Body,
    ctx: &FnCtx,
) -> Option<String> {
    for call in calls {
        let name = call.name.as_str();
        if ADAPTERS.contains(&name) {
            continue;
        }
        if INSENSITIVE_TERMINALS.contains(&name) {
            return None;
        }
        if name == "collect" {
            let target_ty: String = body
                .lets
                .iter()
                .find(|l| l.init_chain == Some(chain_idx))
                .map(|l| l.ty.clone())
                .unwrap_or_default();
            let ordered = ORDERED_COLLECT_MARKERS
                .iter()
                .any(|m| call.turbofish.contains(m) || target_ty.contains(m));
            let sorted_after = body
                .lets
                .iter()
                .find(|l| l.init_chain == Some(chain_idx))
                .is_some_and(|l| ctx.is_sorted_later(&l.name));
            if ordered || sorted_after {
                return None;
            }
            return Some("the collected sequence keeps that order".to_owned());
        }
        return Some(format!("`.{name}(…)` consumes elements in that order"));
    }
    Some("the iterator escapes this expression un-ordered".to_owned())
}

/// `for` loops over hash containers: the body must only perform
/// order-insensitive work (keyed writes, pure reads, pushes into a
/// later-sorted vector).
fn check_for_loops(
    path: &str,
    cf: &CleanFile,
    sf: &SourceFile,
    body: &Body,
    ctx: &FnCtx,
    out: &mut Vec<Violation>,
) {
    for fl in &body.fors {
        let chain = &body.chains[fl.iter_chain];
        if !ctx.is_hash(&chain.base) || excluded(cf, fl.line) {
            continue;
        }
        // The loop must actually iterate the container (directly or
        // through iterator methods/adapters), not e.g. `m.get(k)`.
        let iterates = chain.calls.is_empty()
            || chain.calls.iter().all(|c| {
                ITER_CALLS.contains(&c.name.as_str()) || ADAPTERS.contains(&c.name.as_str())
            });
        if !iterates {
            continue;
        }
        let body_lines = span_lines(sf, fl.body_span);
        let mut reason: Option<String> = None;
        // Early `return` inside the loop selects an arbitrary element.
        for t in &sf.tokens[fl.body_span.0..fl.body_span.1] {
            if t.is_ident("return") && !excluded(cf, t.line) {
                reason = Some("an early `return` picks an arbitrary element".to_owned());
                break;
            }
        }
        if reason.is_none() {
            let local_lets: Vec<&str> = body
                .lets
                .iter()
                .filter(|l| body_lines.contains(&l.line))
                .map(|l| l.name.as_str())
                .collect();
            for inner in &body.chains {
                if inner.start < fl.body_span.0 || inner.start >= fl.body_span.1 {
                    continue;
                }
                let first_ident = inner.base.split(' ').next().unwrap_or("");
                if local_lets.contains(&first_ident) {
                    continue; // loop-local state resets every pass
                }
                if ctx.is_keyed(&inner.base) || ctx.is_sorted_later(&inner.base) {
                    continue;
                }
                if let Some(call) = inner
                    .calls
                    .iter()
                    .find(|c| !PURE_METHODS.contains(&c.name.as_str()))
                {
                    reason = Some(format!(
                        "`{}.{}(…)` accumulates in iteration order",
                        inner.base, call.name
                    ));
                    break;
                }
            }
        }
        if let Some(reason) = reason {
            push(
                out,
                "unordered-iter",
                path,
                cf,
                fl.line,
                format!(
                    "hash-container iteration order is arbitrary and {reason}; \
                     collect and sort the entries first, or use a keyed/ordered \
                     destination"
                ),
            );
        }
    }
}

/// Source-line set covered by a token span.
fn span_lines(sf: &SourceFile, span: (usize, usize)) -> std::ops::RangeInclusive<usize> {
    let lo = sf.tokens.get(span.0).map_or(usize::MAX, |t| t.line);
    let hi = sf.tokens.get(span.1.wrapping_sub(1)).map_or(0, |t| t.line);
    lo..=hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{parse::parse, token::tokenize};
    use crate::lexer::clean;

    fn hits(src: &str, path: &str) -> Vec<(&'static str, usize)> {
        let cf = clean(src);
        let sf = parse(tokenize(&cf.code));
        run_file_passes(path, &cf, &sf)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn wall_clock_flags_instant_and_systemtime() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(hits(src, "crates/geo/src/vec.rs"), vec![("wall-clock", 1)]);
        assert!(hits(src, "crates/obs/src/recorder.rs").is_empty());
        assert!(hits(src, "crates/bench/benches/micro.rs").is_empty());
        assert_eq!(
            hits("fn f() { let t = SystemTime::UNIX_EPOCH; }\n", "a.rs"),
            vec![("wall-clock", 1)]
        );
        // A struct named Instant without ::now is left alone.
        assert!(hits("fn f(i: Instant) {}\n", "a.rs").is_empty());
    }

    #[test]
    fn unseeded_rng_flags_ambient_sources() {
        assert_eq!(
            hits("fn f() { let mut r = thread_rng(); }\n", "a.rs"),
            vec![("unseeded-rng", 1)]
        );
        assert_eq!(
            hits("fn f() -> u32 { rand::random() }\n", "a.rs"),
            vec![("unseeded-rng", 1)]
        );
        assert!(hits(
            "fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); }\n",
            "a.rs"
        )
        .is_empty());
    }

    #[test]
    fn float_reduction_flags_sums_and_folds() {
        assert_eq!(
            hits("fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n", "a.rs"),
            vec![("float-reduction", 1)]
        );
        let let_typed = "fn f(v: &[f64]) -> f64 {\n    let t: f64 = v.iter().sum();\n    t\n}\n";
        assert_eq!(hits(let_typed, "a.rs"), vec![("float-reduction", 2)]);
        assert_eq!(
            hits(
                "fn f(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }\n",
                "a.rs"
            ),
            vec![("float-reduction", 1)]
        );
        // max-fold is order-insensitive; integer sums are fine; the
        // kernel module itself is exempt.
        assert!(hits(
            "fn f(v: &[f64]) -> f64 { v.iter().copied().fold(f64::MIN, f64::max) }\n",
            "a.rs"
        )
        .is_empty());
        assert!(hits("fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }\n", "a.rs").is_empty());
        assert!(hits(
            "fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }\n",
            "crates/geo/src/kernel.rs"
        )
        .is_empty());
    }

    #[test]
    fn unordered_iter_flags_bare_collect() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\n";
        assert_eq!(hits(src, "a.rs"), vec![("unordered-iter", 2)]);
    }

    #[test]
    fn unordered_iter_accepts_sorted_collect() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   \x20   let mut v: Vec<u32> = m.keys().copied().collect();\n\
                   \x20   v.sort();\n    v\n}\n";
        assert!(hits(src, "a.rs").is_empty());
    }

    #[test]
    fn unordered_iter_accepts_insensitive_terminals() {
        let src = "fn f(m: &HashMap<u32, u32>) -> usize { m.values().count() }\n\
                   fn g(m: &HashMap<u32, u32>) -> u32 { m.values().copied().sum::<u32>() }\n";
        assert!(hits(src, "a.rs").is_empty());
    }

    #[test]
    fn unordered_iter_flags_order_sensitive_loop_body() {
        let src = "fn f(m: &HashMap<u32, u32>, acc: &mut Forest) {\n\
                   \x20   for (k, v) in m {\n        acc.union(*k, *v);\n    }\n}\n";
        assert_eq!(hits(src, "a.rs"), vec![("unordered-iter", 2)]);
    }

    #[test]
    fn unordered_iter_accepts_keyed_loop_body() {
        let src = "fn f(m: &HashMap<u32, u32>) -> BTreeMap<u32, u32> {\n\
                   \x20   let mut out: BTreeMap<u32, u32> = BTreeMap::new();\n\
                   \x20   for (k, v) in m {\n        out.insert(*k, *v);\n    }\n\
                   \x20   out\n}\n";
        assert!(hits(src, "a.rs").is_empty());
    }

    #[test]
    fn unordered_iter_accepts_push_into_sorted_vec() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
                   \x20   let mut v: Vec<u32> = Vec::new();\n\
                   \x20   for k in m.keys() {\n        v.push(*k);\n    }\n\
                   \x20   v.sort();\n    v\n}\n";
        assert!(hits(src, "a.rs").is_empty());
    }

    #[test]
    fn unordered_iter_flags_early_return() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Option<u32> {\n\
                   \x20   for (k, v) in m.iter() {\n\
                   \x20       if *v > 3 { return Some(*k); }\n    }\n    None\n}\n";
        assert_eq!(hits(src, "a.rs"), vec![("unordered-iter", 2)]);
    }

    #[test]
    fn unordered_iter_skips_tests_and_lookups() {
        let test_src = "#[cfg(test)]\nmod tests {\n    fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n        m.keys().copied().collect()\n    }\n}\n";
        assert!(hits(test_src, "a.rs").is_empty());
        // Plain lookups never iterate.
        let lookups = "fn f(m: &HashMap<u32, u32>) -> Option<u32> { m.get(&1).copied() }\n";
        assert!(hits(lookups, "a.rs").is_empty());
    }
}
