//! A lightweight recursive-descent parser over the token stream.
//!
//! The analyzer does not need full Rust syntax — it needs the *item
//! skeleton* (modules, functions, impls, uses, struct fields) plus a
//! dataflow-grade view of function bodies: `let` bindings with their
//! types and initializers, `for` loops with their iterated expression,
//! and postfix method-call chains. That is exactly what this module
//! produces. Everything the parser does not understand is skipped
//! token-by-token, so malformed or exotic code degrades to fewer
//! facts, never to a crash.

use crate::analysis::token::{render, Kind, Token};

/// A parsed source file: the item tree plus the raw token stream.
#[derive(Debug, Clone, Default)]
pub struct SourceFile {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// The full token stream (bodies index into this).
    pub tokens: Vec<Token>,
}

/// One item in the tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Item name (`""` for impls and uses).
    pub name: String,
    /// 1-based line of the introducing keyword.
    pub line: usize,
    /// Rendered text of the item's outer attributes.
    pub attrs: Vec<String>,
    /// True under `#[cfg(test)]` / `#[test]` (inherited by children).
    pub is_test: bool,
    /// Token range `[start, end)` in [`SourceFile::tokens`] covering
    /// the whole item, attributes included.
    pub span: (usize, usize),
}

/// Item classification.
#[derive(Debug, Clone)]
pub enum ItemKind {
    /// `fn` with an optional body.
    Fn(FnItem),
    /// Inline `mod name { … }`.
    Mod(Vec<Item>),
    /// External `mod name;` declaration.
    ModDecl,
    /// `use …;` — the rendered path.
    Use(String),
    /// `impl … { … }` with its associated items.
    Impl(Vec<Item>),
    /// `trait … { … }` with its associated items.
    Trait(Vec<Item>),
    /// `struct` with field `(name, type)` pairs (empty for tuple/unit).
    Struct(Vec<(String, String)>),
    /// Anything else (enums, consts, macros, extern blocks, …).
    Other,
}

/// A function: signature fragments plus extracted body facts.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Rendered parameter-list text (parentheses content).
    pub params: String,
    /// Rendered return-type text (empty when elided).
    pub ret: String,
    /// Body facts; `None` for bodyless trait methods.
    pub body: Option<Body>,
}

/// Dataflow facts extracted from one function body.
#[derive(Debug, Clone, Default)]
pub struct Body {
    /// Token range `[start, end)` of the body (braces excluded).
    pub span: (usize, usize),
    /// `let` bindings in source order.
    pub lets: Vec<LetBinding>,
    /// `for` loops in source order.
    pub fors: Vec<ForLoop>,
    /// Postfix method-call chains in source order.
    pub chains: Vec<Chain>,
}

/// One `let` binding.
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// First identifier of the pattern.
    pub name: String,
    /// Rendered type-annotation text (empty when inferred).
    pub ty: String,
    /// Index into [`Body::chains`] of the initializer chain, when the
    /// initializer is (or starts with) a method-call chain.
    pub init_chain: Option<usize>,
    /// 1-based source line.
    pub line: usize,
}

/// One `for pat in expr { … }` loop.
#[derive(Debug, Clone)]
pub struct ForLoop {
    /// Index into [`Body::chains`] of the iterated expression.
    pub iter_chain: usize,
    /// Token range `[start, end)` of the loop body (braces excluded).
    pub body_span: (usize, usize),
    /// 1-based source line of the `for` keyword.
    pub line: usize,
}

/// A postfix method-call chain: `base.m1(..).m2::<T>(..)…`.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Rendered base expression (path, `self.field`, or a
    /// parenthesized group rendered verbatim).
    pub base: String,
    /// The postfix calls in order.
    pub calls: Vec<Call>,
    /// 1-based line of the base.
    pub line: usize,
    /// Token index where the chain starts.
    pub start: usize,
}

/// One postfix call in a chain.
#[derive(Debug, Clone)]
pub struct Call {
    /// Method name.
    pub name: String,
    /// Rendered turbofish text (empty when absent).
    pub turbofish: String,
    /// Rendered argument text.
    pub args: String,
    /// 1-based source line of the method name.
    pub line: usize,
}

impl SourceFile {
    /// Visits every function in the tree (tests included — the visitor
    /// receives the inherited test flag).
    pub fn for_each_fn<'a>(&'a self, mut visit: impl FnMut(&'a Item, &'a FnItem)) {
        fn walk<'a>(items: &'a [Item], visit: &mut impl FnMut(&'a Item, &'a FnItem)) {
            for item in items {
                match &item.kind {
                    ItemKind::Fn(f) => visit(item, f),
                    ItemKind::Mod(children)
                    | ItemKind::Impl(children)
                    | ItemKind::Trait(children) => walk(children, visit),
                    _ => {}
                }
            }
        }
        walk(&self.items, &mut visit);
    }

    /// Every `use` path in the tree, with its test flag.
    pub fn uses(&self) -> Vec<(&str, bool)> {
        fn walk<'a>(items: &'a [Item], out: &mut Vec<(&'a str, bool)>) {
            for item in items {
                match &item.kind {
                    ItemKind::Use(path) => out.push((path, item.is_test)),
                    ItemKind::Mod(children)
                    | ItemKind::Impl(children)
                    | ItemKind::Trait(children) => walk(children, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.items, &mut out);
        out
    }

    /// Names of struct fields in this file whose type mentions any of
    /// the given markers (e.g. `HashMap`) — lets passes treat
    /// `self.field` as a container of that kind.
    pub fn fields_typed(&self, markers: &[&str]) -> Vec<String> {
        fn walk(items: &[Item], markers: &[&str], out: &mut Vec<String>) {
            for item in items {
                match &item.kind {
                    ItemKind::Struct(fields) => {
                        for (name, ty) in fields {
                            if markers.iter().any(|m| ty.contains(m)) {
                                out.push(name.clone());
                            }
                        }
                    }
                    ItemKind::Mod(children)
                    | ItemKind::Impl(children)
                    | ItemKind::Trait(children) => walk(children, markers, out),
                    _ => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.items, markers, &mut out);
        out.sort();
        out.dedup();
        out
    }
}

/// Parses a token stream into a [`SourceFile`].
pub fn parse(tokens: Vec<Token>) -> SourceFile {
    let items = {
        let mut cursor = Cursor {
            tokens: &tokens,
            pos: 0,
        };
        parse_items(&mut cursor, false, None)
    };
    SourceFile { items, tokens }
}

struct Cursor<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&'a Token> {
        self.tokens.get(self.pos + offset)
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(text))
    }

    fn at_punct(&self, text: &str) -> bool {
        self.peek().is_some_and(|t| t.is_punct(text))
    }

    /// Skips a balanced `{ … }` / `( … )` / `[ … ]` group, assuming the
    /// cursor sits on the opener. Returns the token range of the
    /// *interior*.
    fn skip_group(&mut self, open: &str, close: &str) -> (usize, usize) {
        debug_assert!(self.at_punct(open));
        self.bump();
        let start = self.pos;
        let mut depth = 1usize;
        while let Some(t) = self.peek() {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    let end = self.pos;
                    self.bump();
                    return (start, end);
                }
            }
            self.bump();
        }
        (start, self.pos)
    }

    /// Advances to just past the next `;` at zero bracket depth, or
    /// past the matching close of the first `{` met at zero depth.
    /// Returns the range consumed (terminator excluded).
    fn skip_to_semi_or_block(&mut self) -> (usize, usize) {
        let start = self.pos;
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle = (angle - 1).max(0);
            } else if t.is_punct("(") {
                self.skip_group("(", ")");
                continue;
            } else if t.is_punct("[") {
                self.skip_group("[", "]");
                continue;
            } else if t.is_punct("{") && angle == 0 {
                let end = self.pos;
                self.skip_group("{", "}");
                return (start, end);
            } else if t.is_punct(";") && angle == 0 {
                let end = self.pos;
                self.bump();
                return (start, end);
            }
            self.bump();
        }
        (start, self.pos)
    }
}

/// Does this attribute text mark test-only code?
fn attr_is_test(attr: &str) -> bool {
    attr.contains("cfg ( test") || attr.contains("[ test") || attr.contains("( test )")
}

/// Parses items until `stop` (an exclusive token index) or the end of
/// the stream.
fn parse_items(cursor: &mut Cursor<'_>, inherited_test: bool, stop: Option<usize>) -> Vec<Item> {
    let mut items = Vec::new();
    loop {
        if let Some(stop) = stop {
            if cursor.pos >= stop {
                break;
            }
        }
        if cursor.peek().is_none() {
            break;
        }
        let item_start = cursor.pos;
        // Outer attributes (inner `#![…]` attributes are skipped too).
        let mut attrs = Vec::new();
        while cursor.at_punct("#") {
            let attr_start = cursor.pos;
            cursor.bump();
            if cursor.at_punct("!") {
                cursor.bump();
            }
            if cursor.at_punct("[") {
                cursor.skip_group("[", "]");
            }
            attrs.push(render(&cursor.tokens[attr_start..cursor.pos]));
        }
        let is_test = inherited_test || attrs.iter().any(|a| attr_is_test(a));
        // Visibility.
        if cursor.at_ident("pub") {
            cursor.bump();
            if cursor.at_punct("(") {
                cursor.skip_group("(", ")");
            }
        }
        // Leading qualifiers on functions.
        while cursor.at_ident("const")
            && cursor.peek_at(1).is_some_and(|t| {
                t.is_ident("fn")
                    || t.is_ident("unsafe")
                    || t.is_ident("extern")
                    || t.is_ident("async")
            })
        {
            cursor.bump();
        }
        while cursor.at_ident("async") || cursor.at_ident("unsafe") || cursor.at_ident("extern") {
            cursor.bump();
            if cursor.peek().is_some_and(|t| t.kind == Kind::Str) {
                cursor.bump(); // ABI string
            }
        }
        let Some(head) = cursor.peek() else { break };
        let line = head.line;
        let item = match head.text.as_str() {
            "fn" if head.kind == Kind::Ident => {
                cursor.bump();
                let name = cursor
                    .peek()
                    .filter(|t| t.kind == Kind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                cursor.bump();
                Some(parse_fn_rest(
                    cursor, name, line, attrs, is_test, item_start,
                ))
            }
            "mod" if head.kind == Kind::Ident => {
                cursor.bump();
                let name = cursor
                    .peek()
                    .filter(|t| t.kind == Kind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                cursor.bump();
                if cursor.at_punct("{") {
                    let (start, end) = cursor.skip_group("{", "}");
                    let mut inner = Cursor {
                        tokens: cursor.tokens,
                        pos: start,
                    };
                    let children = parse_items(&mut inner, is_test, Some(end));
                    Some(Item {
                        kind: ItemKind::Mod(children),
                        name,
                        line,
                        attrs,
                        is_test,
                        span: (item_start, cursor.pos),
                    })
                } else {
                    if cursor.at_punct(";") {
                        cursor.bump();
                    }
                    Some(Item {
                        kind: ItemKind::ModDecl,
                        name,
                        line,
                        attrs,
                        is_test,
                        span: (item_start, cursor.pos),
                    })
                }
            }
            "use" if head.kind == Kind::Ident => {
                cursor.bump();
                let start = cursor.pos;
                while let Some(t) = cursor.peek() {
                    if t.is_punct(";") {
                        break;
                    }
                    if t.is_punct("{") {
                        cursor.skip_group("{", "}");
                        continue;
                    }
                    cursor.bump();
                }
                let path = render(&cursor.tokens[start..cursor.pos]);
                if cursor.at_punct(";") {
                    cursor.bump();
                }
                Some(Item {
                    kind: ItemKind::Use(path),
                    name: String::new(),
                    line,
                    attrs,
                    is_test,
                    span: (item_start, cursor.pos),
                })
            }
            "impl" | "trait" if head.kind == Kind::Ident => {
                let is_trait = head.text == "trait";
                cursor.bump();
                // Header: everything to the body `{` at zero depth.
                let mut angle = 0i32;
                let name_tok = cursor
                    .peek()
                    .filter(|t| t.kind == Kind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                while let Some(t) = cursor.peek() {
                    if t.is_punct("<") {
                        angle += 1;
                    } else if t.is_punct(">") {
                        angle = (angle - 1).max(0);
                    } else if (t.is_punct("{") || t.is_punct(";")) && angle == 0 {
                        break;
                    }
                    cursor.bump();
                }
                if cursor.at_punct("{") {
                    let (start, end) = cursor.skip_group("{", "}");
                    let mut inner = Cursor {
                        tokens: cursor.tokens,
                        pos: start,
                    };
                    let children = parse_items(&mut inner, is_test, Some(end));
                    Some(Item {
                        kind: if is_trait {
                            ItemKind::Trait(children)
                        } else {
                            ItemKind::Impl(children)
                        },
                        name: name_tok,
                        line,
                        attrs,
                        is_test,
                        span: (item_start, cursor.pos),
                    })
                } else {
                    if cursor.at_punct(";") {
                        cursor.bump();
                    }
                    Some(Item {
                        kind: ItemKind::Other,
                        name: name_tok,
                        line,
                        attrs,
                        is_test,
                        span: (item_start, cursor.pos),
                    })
                }
            }
            "struct" if head.kind == Kind::Ident => {
                cursor.bump();
                let name = cursor
                    .peek()
                    .filter(|t| t.kind == Kind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                cursor.bump();
                // Generics / where clause up to `{`, `(` or `;`.
                let mut angle = 0i32;
                while let Some(t) = cursor.peek() {
                    if t.is_punct("<") {
                        angle += 1;
                    } else if t.is_punct(">") {
                        angle = (angle - 1).max(0);
                    } else if angle == 0 && (t.is_punct("{") || t.is_punct("(") || t.is_punct(";"))
                    {
                        break;
                    }
                    cursor.bump();
                }
                let fields = if cursor.at_punct("{") {
                    let (start, end) = cursor.skip_group("{", "}");
                    parse_struct_fields(&cursor.tokens[start..end])
                } else {
                    if cursor.at_punct("(") {
                        cursor.skip_group("(", ")");
                    }
                    if cursor.at_punct(";") {
                        cursor.bump();
                    }
                    Vec::new()
                };
                Some(Item {
                    kind: ItemKind::Struct(fields),
                    name,
                    line,
                    attrs,
                    is_test,
                    span: (item_start, cursor.pos),
                })
            }
            "enum" | "union" | "const" | "static" | "type" | "macro_rules" | "macro"
                if head.kind == Kind::Ident =>
            {
                cursor.bump();
                let name = cursor
                    .peek()
                    .filter(|t| t.kind == Kind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                cursor.skip_to_semi_or_block();
                Some(Item {
                    kind: ItemKind::Other,
                    name,
                    line,
                    attrs,
                    is_test,
                    span: (item_start, cursor.pos),
                })
            }
            _ => {
                // Unknown construct: skip one token and try again.
                cursor.bump();
                None
            }
        };
        if let Some(item) = item {
            items.push(item);
        }
    }
    items
}

/// Parses a function after its name: generics, params, return type,
/// where clause, and the body (if any).
fn parse_fn_rest(
    cursor: &mut Cursor<'_>,
    name: String,
    line: usize,
    attrs: Vec<String>,
    is_test: bool,
    item_start: usize,
) -> Item {
    // Generics.
    if cursor.at_punct("<") {
        let mut depth = 0i32;
        while let Some(t) = cursor.peek() {
            if t.is_punct("<") {
                depth += 1;
            } else if t.is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    cursor.bump();
                    break;
                }
            } else if t.is_punct(">>") {
                depth -= 2;
                if depth <= 0 {
                    cursor.bump();
                    break;
                }
            }
            cursor.bump();
        }
    }
    // Parameters.
    let params = if cursor.at_punct("(") {
        let (start, end) = cursor.skip_group("(", ")");
        render(&cursor.tokens[start..end])
    } else {
        String::new()
    };
    // Return type: `->` up to `{`, `;` or `where` at zero depth.
    let mut ret = String::new();
    if cursor.at_punct("->") {
        cursor.bump();
        let start = cursor.pos;
        let mut angle = 0i32;
        while let Some(t) = cursor.peek() {
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle = (angle - 1).max(0);
            } else if t.is_punct(">>") {
                angle = (angle - 2).max(0);
            } else if t.is_punct("(") {
                cursor.skip_group("(", ")");
                continue;
            } else if angle == 0 && (t.is_punct("{") || t.is_punct(";") || t.is_ident("where")) {
                break;
            }
            cursor.bump();
        }
        ret = render(&cursor.tokens[start..cursor.pos]);
    }
    // Where clause.
    if cursor.at_ident("where") {
        while let Some(t) = cursor.peek() {
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            cursor.bump();
        }
    }
    let body = if cursor.at_punct("{") {
        let (start, end) = cursor.skip_group("{", "}");
        Some(extract_body(cursor.tokens, start, end))
    } else {
        if cursor.at_punct(";") {
            cursor.bump();
        }
        None
    };
    Item {
        kind: ItemKind::Fn(FnItem { params, ret, body }),
        name,
        line,
        attrs,
        is_test,
        span: (item_start, cursor.pos),
    }
}

/// Splits `struct { … }` interior tokens into `(name, type)` pairs.
fn parse_struct_fields(tokens: &[Token]) -> Vec<(String, String)> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility.
        while tokens.get(i).is_some_and(|t| t.is_punct("#")) {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct("[")) {
                let mut depth = 0i32;
                while let Some(t) = tokens.get(i) {
                    if t.is_punct("[") {
                        depth += 1;
                    } else if t.is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        if tokens.get(i).is_some_and(|t| t.is_ident("pub")) {
            i += 1;
            if tokens.get(i).is_some_and(|t| t.is_punct("(")) {
                let mut depth = 0i32;
                while let Some(t) = tokens.get(i) {
                    if t.is_punct("(") {
                        depth += 1;
                    } else if t.is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
        }
        let Some(name_tok) = tokens.get(i) else { break };
        if name_tok.kind != Kind::Ident || !tokens.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        i += 2;
        let ty_start = i;
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle = (angle - 1).max(0);
            } else if t.is_punct(">>") {
                angle = (angle - 2).max(0);
            } else if t.is_punct(",") && angle == 0 {
                break;
            }
            i += 1;
        }
        fields.push((name, render(&tokens[ty_start..i])));
        i += 1; // the comma
    }
    fields
}

/// Extracts dataflow facts from a body token range.
fn extract_body(tokens: &[Token], start: usize, end: usize) -> Body {
    let mut body = Body {
        span: (start, end),
        ..Body::default()
    };
    body.chains = extract_chains(tokens, start, end);
    extract_lets(tokens, start, end, &mut body);
    extract_fors(tokens, start, end, &mut body);
    body
}

/// Finds every postfix method-call chain in `[start, end)`.
fn extract_chains(tokens: &[Token], start: usize, end: usize) -> Vec<Chain> {
    let mut chains = Vec::new();
    let mut i = start;
    while i < end {
        // A chain base: a path expression (idents and `::`), possibly
        // `self . field`, optionally preceded by `&` / `&mut`.
        let t = &tokens[i];
        let base_start = i;
        if t.kind == Kind::Ident && !is_expr_keyword(&t.text) {
            // Walk the path / field-access base.
            let mut j = i + 1;
            while j < end {
                if tokens[j].is_punct("::")
                    && tokens.get(j + 1).is_some_and(|t| t.kind == Kind::Ident)
                {
                    j += 2;
                } else if tokens[j].is_punct(".")
                    && tokens.get(j + 1).is_some_and(|t| t.kind == Kind::Ident)
                    && !tokens.get(j + 2).is_some_and(|t| t.is_punct("("))
                    && !(tokens.get(j + 2).is_some_and(|t| t.is_punct("::")))
                {
                    // Plain field access extends the base; a method
                    // call (`.name(` or `.name::<`) starts the chain.
                    j += 2;
                } else if tokens[j].is_punct("[") {
                    // Indexing extends the base.
                    let mut depth = 0i32;
                    while j < end {
                        if tokens[j].is_punct("[") {
                            depth += 1;
                        } else if tokens[j].is_punct("]") {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                } else {
                    break;
                }
            }
            // A call on the path itself (`HashMap::new()`)
            // extends the base too.
            if j < end
                && tokens[j].is_punct("(")
                && tokens
                    .get(j.wrapping_sub(1))
                    .is_some_and(|t| t.kind == Kind::Ident)
            {
                let mut depth = 0i32;
                while j < end {
                    if tokens[j].is_punct("(") {
                        depth += 1;
                    } else if tokens[j].is_punct(")") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // Postfix calls?
            if j < end && tokens[j].is_punct(".") {
                let (calls, after) = parse_postfix_calls(tokens, j, end);
                if !calls.is_empty() {
                    chains.push(Chain {
                        base: render(&tokens[base_start..j]),
                        calls,
                        line: t.line,
                        start: base_start,
                    });
                    i = after;
                    continue;
                }
            }
            i = j.max(i + 1);
            continue;
        }
        if t.is_punct("(") {
            // Parenthesized base: skip the group, then capture calls.
            let mut depth = 0i32;
            let mut j = i;
            while j < end {
                if tokens[j].is_punct("(") {
                    depth += 1;
                } else if tokens[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            if j < end && tokens[j].is_punct(".") {
                let (calls, after) = parse_postfix_calls(tokens, j, end);
                if !calls.is_empty() {
                    chains.push(Chain {
                        base: render(&tokens[base_start..j]),
                        calls,
                        line: t.line,
                        start: base_start,
                    });
                    i = after;
                    continue;
                }
            }
            // No chain: step *into* the group so inner chains are found.
            i += 1;
            continue;
        }
        i += 1;
    }
    chains
}

/// Keywords that cannot begin a chain base.
fn is_expr_keyword(text: &str) -> bool {
    matches!(
        text,
        "if" | "else"
            | "match"
            | "for"
            | "while"
            | "loop"
            | "let"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "impl"
            | "where"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "const"
            | "static"
            | "type"
            | "unsafe"
            | "dyn"
    )
}

/// Parses `.name[::<…>](…)` sequences starting at a `.` token.
/// Returns the calls and the index just past the last one.
fn parse_postfix_calls(tokens: &[Token], mut i: usize, end: usize) -> (Vec<Call>, usize) {
    let mut calls = Vec::new();
    while i < end && tokens[i].is_punct(".") {
        let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == Kind::Ident) else {
            break;
        };
        let mut j = i + 2;
        let mut turbofish = String::new();
        if j < end && tokens[j].is_punct("::") && tokens.get(j + 1).is_some_and(|t| t.is_punct("<"))
        {
            let tf_start = j;
            j += 1;
            let mut angle = 0i32;
            while j < end {
                if tokens[j].is_punct("<") {
                    angle += 1;
                } else if tokens[j].is_punct(">") {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                } else if tokens[j].is_punct(">>") {
                    angle -= 2;
                    if angle <= 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            turbofish = render(&tokens[tf_start..j]);
        }
        if j < end && tokens[j].is_punct("(") {
            let args_start = j + 1;
            let mut depth = 0i32;
            while j < end {
                if tokens[j].is_punct("(") {
                    depth += 1;
                } else if tokens[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let args = render(&tokens[args_start..j.min(end)]);
            calls.push(Call {
                name: name_tok.text.clone(),
                turbofish,
                args,
                line: name_tok.line,
            });
            i = (j + 1).min(end);
        } else {
            // Field access mid-chain (`a.b().c.d()`): record as a
            // zero-arg pseudo-call so the chain stays connected.
            calls.push(Call {
                name: name_tok.text.clone(),
                turbofish,
                args: String::new(),
                line: name_tok.line,
            });
            i = j;
        }
    }
    (calls, i)
}

/// Records `let` bindings found anywhere in `[start, end)`.
fn extract_lets(tokens: &[Token], start: usize, end: usize, body: &mut Body) {
    let mut i = start;
    while i < end {
        if !tokens[i].is_ident("let") {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        i += 1;
        if tokens.get(i).is_some_and(|t| t.is_ident("mut")) {
            i += 1;
        }
        // First identifier of the pattern.
        let mut name = String::new();
        let mut j = i;
        let mut depth = 0i32;
        while j < end {
            let t = &tokens[j];
            if t.kind == Kind::Ident && !is_expr_keyword(&t.text) && name.is_empty() {
                name = t.text.clone();
            }
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && (t.is_punct(":") || t.is_punct("=") || t.is_punct(";")) {
                break;
            }
            j += 1;
        }
        // Optional type annotation.
        let mut ty = String::new();
        if tokens.get(j).is_some_and(|t| t.is_punct(":")) {
            j += 1;
            let ty_start = j;
            let mut angle = 0i32;
            while j < end {
                let t = &tokens[j];
                if t.is_punct("<") {
                    angle += 1;
                } else if t.is_punct(">") {
                    angle = (angle - 1).max(0);
                } else if t.is_punct(">>") {
                    angle = (angle - 2).max(0);
                } else if angle == 0 && (t.is_punct("=") || t.is_punct(";")) {
                    break;
                }
                j += 1;
            }
            ty = render(&tokens[ty_start..j]);
        }
        // Initializer: associate the chain starting at the init token.
        let mut init_chain = None;
        if tokens.get(j).is_some_and(|t| t.is_punct("=")) {
            let init_start = j + 1;
            init_chain = body
                .chains
                .iter()
                .position(|c| c.start == init_start || c.start == init_start + 1);
        }
        body.lets.push(LetBinding {
            name,
            ty,
            init_chain,
            line,
        });
        i = j.max(i);
        i += 1;
    }
}

/// Records `for pat in expr { … }` loops found in `[start, end)`.
fn extract_fors(tokens: &[Token], start: usize, end: usize, body: &mut Body) {
    let mut i = start;
    while i < end {
        if !tokens[i].is_ident("for") {
            i += 1;
            continue;
        }
        // `for<'a>` in bounds is not a loop.
        if tokens.get(i + 1).is_some_and(|t| t.is_punct("<")) {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        // Find `in` at zero depth.
        let mut j = i + 1;
        let mut depth = 0i32;
        while j < end {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") {
                break;
            }
            j += 1;
        }
        if j >= end {
            i += 1;
            continue;
        }
        let iter_start = j + 1;
        // Iterated expression: up to the body `{` at zero depth.
        let mut k = iter_start;
        let mut d2 = 0i32;
        while k < end {
            let t = &tokens[k];
            if t.is_punct("(") || t.is_punct("[") {
                d2 += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                d2 -= 1;
            } else if d2 == 0 && t.is_punct("{") {
                break;
            }
            k += 1;
        }
        if k >= end {
            i += 1;
            continue;
        }
        // Strip a leading `&` / `&mut` from the iterated expression.
        let mut expr_start = iter_start;
        while tokens
            .get(expr_start)
            .is_some_and(|t| t.is_punct("&") || t.is_ident("mut"))
        {
            expr_start += 1;
        }
        // The iterated expression as a chain: reuse one extracted at
        // that position, or synthesize a call-less chain for a plain
        // binding (`for x in map`).
        let iter_chain = match body
            .chains
            .iter()
            .position(|c| c.start >= expr_start && c.start < k)
        {
            Some(idx) => idx,
            None => {
                body.chains.push(Chain {
                    base: render(&tokens[expr_start..k]),
                    calls: Vec::new(),
                    line,
                    start: expr_start,
                });
                body.chains.len() - 1
            }
        };
        // Body span: matching brace.
        let body_open = k;
        let mut d3 = 0i32;
        let mut m = body_open;
        while m < end {
            if tokens[m].is_punct("{") {
                d3 += 1;
            } else if tokens[m].is_punct("}") {
                d3 -= 1;
                if d3 == 0 {
                    break;
                }
            }
            m += 1;
        }
        body.fors.push(ForLoop {
            iter_chain,
            body_span: (body_open + 1, m.min(end)),
            line,
        });
        i = body_open + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::token::tokenize;
    use crate::lexer::clean;

    fn parse_src(src: &str) -> SourceFile {
        parse(tokenize(&clean(src).code))
    }

    #[test]
    fn items_are_found() {
        let sf = parse_src(
            "use std::collections::HashMap;\n\
             pub struct S { pub field: HashMap<u32, u32>, other: f64 }\n\
             impl S {\n    pub fn get(&self) -> u32 { 0 }\n}\n\
             mod inner { fn helper() {} }\n\
             #[cfg(test)]\nmod tests { fn t() {} }\n",
        );
        assert_eq!(sf.items.len(), 5);
        assert!(matches!(sf.items[0].kind, ItemKind::Use(_)));
        let ItemKind::Struct(fields) = &sf.items[1].kind else {
            panic!("expected struct");
        };
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "field");
        assert!(fields[0].1.contains("HashMap"));
        assert!(matches!(sf.items[2].kind, ItemKind::Impl(_)));
        assert!(!sf.items[3].is_test);
        assert!(sf.items[4].is_test);
        let mut fns = Vec::new();
        sf.for_each_fn(|item, _| fns.push((item.name.clone(), item.is_test)));
        assert_eq!(
            fns,
            vec![
                ("get".to_owned(), false),
                ("helper".to_owned(), false),
                ("t".to_owned(), true)
            ]
        );
    }

    #[test]
    fn fn_signature_fragments() {
        let sf = parse_src("pub fn f(x: &HashMap<u32, u32>, y: f64) -> Result<f64, E> { y }\n");
        let ItemKind::Fn(f) = &sf.items[0].kind else {
            panic!("expected fn");
        };
        assert!(f.params.contains("HashMap"));
        assert!(f.ret.contains("Result"));
        assert!(f.ret.contains("f64"));
        assert!(f.body.is_some());
    }

    #[test]
    fn chains_and_lets_are_extracted() {
        let sf = parse_src(
            "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n\
             let mut out: Vec<u32> = m.values().copied().collect();\n\
             out.sort();\n\
             out\n}\n",
        );
        let ItemKind::Fn(f) = &sf.items[0].kind else {
            panic!("expected fn");
        };
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.lets.len(), 1);
        assert_eq!(body.lets[0].name, "out");
        assert!(body.lets[0].ty.contains("Vec"));
        let init = body.lets[0].init_chain.expect("init chain");
        let chain = &body.chains[init];
        assert_eq!(chain.base, "m");
        let names: Vec<&str> = chain.calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["values", "copied", "collect"]);
        // The later `out.sort()` chain is also present.
        assert!(body
            .chains
            .iter()
            .any(|c| c.base == "out" && c.calls.iter().any(|call| call.name == "sort")));
    }

    #[test]
    fn for_loops_are_extracted() {
        let sf = parse_src(
            "fn f(m: &HashMap<u32, u32>) {\n\
             for (k, v) in &m {\n    use_it(k, v);\n}\n\
             for x in 0..10 { other(x); }\n}\n",
        );
        let ItemKind::Fn(f) = &sf.items[0].kind else {
            panic!("expected fn");
        };
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.fors.len(), 2);
        assert_eq!(body.chains[body.fors[0].iter_chain].base, "m");
    }

    #[test]
    fn turbofish_is_captured() {
        let sf = parse_src("fn f(m: HashMap<u32, u32>) -> f64 { m.values().sum::<f64>() }\n");
        let ItemKind::Fn(f) = &sf.items[0].kind else {
            panic!("expected fn");
        };
        let body = f.body.as_ref().unwrap();
        let chain = &body.chains[0];
        let sum = chain.calls.iter().find(|c| c.name == "sum").unwrap();
        assert!(sum.turbofish.contains("f64"));
    }

    #[test]
    fn spans_cover_the_token_stream() {
        // Round-trip property: top-level item spans are disjoint,
        // ordered, and jointly cover every token (no inner attrs here).
        let src = "use a::b;\nfn f() { g(); }\nstruct S { x: u32 }\nfn h() -> u32 { 3 }\n";
        let sf = parse_src(src);
        let mut covered = 0usize;
        for item in &sf.items {
            assert_eq!(item.span.0, covered, "gap before {:?}", item.name);
            assert!(item.span.1 > item.span.0);
            covered = item.span.1;
        }
        assert_eq!(covered, sf.tokens.len());
    }
}
