//! Minimal SARIF 2.1.0 output for `cargo xtask check --format sarif`.
//!
//! The document carries one run with the full rule registry and every
//! finding; allowlist-suppressed findings are emitted at `note` level
//! with a SARIF suppression object, so downstream viewers show them
//! greyed-out instead of dropping them.

use tagdist_obs::Value;

use crate::checker::CheckOutcome;

const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Serializes the outcome as a SARIF 2.1.0 document (deterministic:
/// rules and findings are pre-sorted).
pub fn to_sarif(outcome: &CheckOutcome, rules: &[&str]) -> String {
    let rule_objs = rules
        .iter()
        .map(|r| Value::Obj(vec![("id".to_owned(), Value::Str((*r).to_owned()))]))
        .collect();
    let results = outcome
        .violations
        .iter()
        .map(|v| {
            let location = Value::Obj(vec![(
                "physicalLocation".to_owned(),
                Value::Obj(vec![
                    (
                        "artifactLocation".to_owned(),
                        Value::Obj(vec![("uri".to_owned(), Value::Str(v.path.clone()))]),
                    ),
                    (
                        "region".to_owned(),
                        Value::Obj(vec![(
                            "startLine".to_owned(),
                            Value::Num(v.line.max(1).to_string()),
                        )]),
                    ),
                ]),
            )]);
            let mut fields = vec![
                ("ruleId".to_owned(), Value::Str(v.rule.to_owned())),
                (
                    "level".to_owned(),
                    Value::Str(if v.allowed { "note" } else { "error" }.to_owned()),
                ),
                (
                    "message".to_owned(),
                    Value::Obj(vec![("text".to_owned(), Value::Str(v.message.clone()))]),
                ),
                ("locations".to_owned(), Value::Arr(vec![location])),
            ];
            if v.allowed {
                fields.push((
                    "suppressions".to_owned(),
                    Value::Arr(vec![Value::Obj(vec![
                        ("kind".to_owned(), Value::Str("external".to_owned())),
                        (
                            "justification".to_owned(),
                            Value::Str("sanctioned by xtask-allow.toml".to_owned()),
                        ),
                    ])]),
                ));
            }
            Value::Obj(fields)
        })
        .collect();
    let run = Value::Obj(vec![
        (
            "tool".to_owned(),
            Value::Obj(vec![(
                "driver".to_owned(),
                Value::Obj(vec![
                    ("name".to_owned(), Value::Str("xtask-check".to_owned())),
                    (
                        "informationUri".to_owned(),
                        Value::Str("https://github.com/tagdist/tagdist".to_owned()),
                    ),
                    ("rules".to_owned(), Value::Arr(rule_objs)),
                ]),
            )]),
        ),
        ("results".to_owned(), Value::Arr(results)),
    ]);
    let doc = Value::Obj(vec![
        ("version".to_owned(), Value::Str("2.1.0".to_owned())),
        ("$schema".to_owned(), Value::Str(SCHEMA.to_owned())),
        ("runs".to_owned(), Value::Arr(vec![run])),
    ]);
    let mut out = String::new();
    doc.write(&mut out);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Violation;

    #[test]
    fn sarif_has_schema_rules_and_levels() {
        let outcome = CheckOutcome {
            files_checked: 1,
            violations: vec![
                Violation {
                    rule: "wall-clock",
                    path: "crates/x/src/a.rs".to_owned(),
                    line: 3,
                    snippet: "Instant::now()".to_owned(),
                    message: "no wall clocks".to_owned(),
                    allowed: false,
                },
                Violation {
                    rule: "no-panic",
                    path: "crates/x/src/b.rs".to_owned(),
                    line: 9,
                    snippet: "x.unwrap()".to_owned(),
                    message: "no panics".to_owned(),
                    allowed: true,
                },
            ],
            ..CheckOutcome::default()
        };
        let sarif = to_sarif(&outcome, &["no-panic", "wall-clock"]);
        let doc = Value::parse(&sarif).unwrap();
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Value::as_array).unwrap();
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("level").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(
            results[1].get("level").and_then(Value::as_str),
            Some("note")
        );
        assert!(results[1].get("suppressions").is_some());
        let start = results[0]
            .get("locations")
            .and_then(Value::as_array)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .and_then(|r| r.get("startLine"))
            .and_then(Value::as_u64);
        assert_eq!(start, Some(3));
    }
}
