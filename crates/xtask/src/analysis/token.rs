//! Token stream over a blanked source file.
//!
//! The [`crate::lexer`] already strips comments and literal contents
//! (leaving delimiters in place), so tokenizing its output is a small
//! job: identifiers, numbers, string/char shells, lifetimes, and
//! punctuation — each tagged with its 1-based source line. The parser
//! in [`crate::analysis::parse`] consumes this stream; the passes fall
//! back to it for pattern scans the item AST does not structure.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (suffix included).
    Number,
    /// String literal shell (contents were blanked by the lexer).
    Str,
    /// Char literal shell.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation, possibly multi-character (`::`, `->`, `..=`).
    Punct,
}

/// One token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: Kind,
    /// The token text (strings and chars reduce to their delimiters).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == Kind::Ident && self.text == text
    }

    /// True for punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == Kind::Punct && self.text == text
    }
}

/// Multi-character punctuation, longest first so the scan is greedy.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "->", "=>", "..", "==", "!=", "<=", ">=", "&&", "||", "<<",
    ">>", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

/// Tokenizes blanked code lines (the [`crate::lexer::CleanFile::code`]
/// field) into a flat stream.
pub fn tokenize(code: &[String]) -> Vec<Token> {
    let mut out = Vec::new();
    for (lineno, line) in code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            let line_1 = lineno + 1;
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token {
                    kind: Kind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: line_1,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // A decimal point directly followed by a digit extends
                // the literal (`1.5`, `2.5e3`); `1..n` does not.
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                out.push(Token {
                    kind: Kind::Number,
                    text: chars[start..i].iter().collect(),
                    line: line_1,
                });
                continue;
            }
            if c == '"' {
                // The lexer blanked the contents; scan to the closing
                // quote (possibly on a later source line — the blanked
                // stream keeps it on this logical line only for
                // single-line literals, so stop at end of line too).
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                i = (i + 1).min(chars.len());
                out.push(Token {
                    kind: Kind::Str,
                    text: "\"\"".to_owned(),
                    line: line_1,
                });
                continue;
            }
            if c == '\'' {
                // Lifetime when an identifier char follows and no
                // closing quote terminates it (the lexer kept lifetime
                // text verbatim, but blanked char-literal contents).
                let next = chars.get(i + 1).copied();
                let is_lifetime = next.is_some_and(|n| n.is_alphabetic() || n == '_')
                    && chars.get(i + 2) != Some(&'\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(Token {
                        kind: Kind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line: line_1,
                    });
                } else {
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i = (i + 1).min(chars.len());
                    out.push(Token {
                        kind: Kind::Char,
                        text: "''".to_owned(),
                        line: line_1,
                    });
                }
                continue;
            }
            // Punctuation: greedy multi-char match first.
            let rest: String = chars[i..].iter().take(3).collect();
            let multi = MULTI_PUNCT.iter().find(|p| rest.starts_with(**p));
            let text = multi.map_or_else(|| c.to_string(), |p| (*p).to_owned());
            i += text.chars().count();
            out.push(Token {
                kind: Kind::Punct,
                text,
                line: line_1,
            });
        }
    }
    out
}

/// Renders a token slice back to readable text (single spaces between
/// tokens) — used by the parser to capture signature/type fragments.
pub fn render(tokens: &[Token]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::clean;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(&clean(src).code)
    }

    #[test]
    fn idents_numbers_and_puncts() {
        let t = toks("let x = 1.5_f64 + foo::bar(2);\n");
        let texts: Vec<&str> = t.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["let", "x", "=", "1.5_f64", "+", "foo", "::", "bar", "(", "2", ")", ";"]
        );
        assert_eq!(t[0].kind, Kind::Ident);
        assert_eq!(t[3].kind, Kind::Number);
        assert_eq!(t[6].kind, Kind::Punct);
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let texts: Vec<String> = toks("for i in 0..10 {}\n")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert!(texts.contains(&"..".to_owned()));
        assert!(texts.contains(&"0".to_owned()));
        assert!(texts.contains(&"10".to_owned()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = toks("fn f<'a>(x: &'a str) { let c = 'y'; }\n");
        assert!(t.iter().any(|t| t.kind == Kind::Lifetime && t.text == "'a"));
        assert!(t.iter().any(|t| t.kind == Kind::Char));
    }

    #[test]
    fn strings_collapse_to_shells() {
        let t = toks("let s = \"Instant::now()\";\n");
        assert!(t.iter().any(|t| t.kind == Kind::Str));
        assert!(!t.iter().any(|t| t.text == "Instant"));
    }

    #[test]
    fn lines_are_tracked() {
        let t = toks("a\nb\n\nc\n");
        let lines: Vec<usize> = t.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
