//! Content-hash cache for the per-file analysis.
//!
//! Warm re-runs skip re-lexing/parsing files whose bytes are
//! unchanged: the cache maps each repo-relative path to an FNV-1a 64
//! hash and the violations computed last time. Entries store the
//! *pre-allowlist* findings (`allowed` is recomputed on every run), so
//! editing `xtask-allow.toml` never requires invalidation. The cache
//! is a plain JSON file under `target/`; any parse problem simply
//! drops it — it is an accelerator, never a source of truth.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use tagdist_obs::Value;

use crate::rules::Violation;

/// Default location, relative to the workspace root.
pub const DEFAULT_CACHE_REL: &str = "target/xtask-analysis-cache.json";

/// FNV-1a 64-bit content hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[derive(Debug, Clone)]
struct CachedFile {
    hash: u64,
    violations: Vec<Violation>,
}

/// The analysis cache, keyed by repo-relative path.
#[derive(Debug, Clone, Default)]
pub struct AnalysisCache {
    files: BTreeMap<String, CachedFile>,
    /// Lookups answered from the cache this run.
    pub hits: usize,
    /// Lookups that had to re-analyze.
    pub misses: usize,
}

impl AnalysisCache {
    /// Loads a cache file; any error (missing, unparsable, wrong
    /// version) yields an empty cache.
    pub fn load(path: &Path, known_rules: &[&'static str]) -> AnalysisCache {
        let Ok(text) = fs::read_to_string(path) else {
            return AnalysisCache::default();
        };
        let Ok(doc) = Value::parse(&text) else {
            return AnalysisCache::default();
        };
        if doc.get("version").and_then(Value::as_u64) != Some(1) {
            return AnalysisCache::default();
        }
        let mut files = BTreeMap::new();
        let entries = doc
            .get("files")
            .and_then(Value::entries)
            .unwrap_or_default();
        'entry: for (path, entry) in entries {
            let Some(hash) = entry.get("hash").and_then(Value::as_str) else {
                continue;
            };
            let Ok(hash) = hash.parse::<u64>() else {
                continue;
            };
            let mut violations = Vec::new();
            for v in entry
                .get("violations")
                .and_then(Value::as_array)
                .unwrap_or_default()
            {
                // Rule names intern to the static registry; an unknown
                // rule means the cache predates this analyzer build —
                // drop the whole entry so the file re-analyzes.
                let Some(rule) = v
                    .get("rule")
                    .and_then(Value::as_str)
                    .and_then(|r| known_rules.iter().find(|k| **k == r).copied())
                else {
                    continue 'entry;
                };
                let (Some(line), Some(snippet), Some(message)) = (
                    v.get("line").and_then(Value::as_u64),
                    v.get("snippet").and_then(Value::as_str),
                    v.get("message").and_then(Value::as_str),
                ) else {
                    continue 'entry;
                };
                violations.push(Violation {
                    rule,
                    path: path.clone(),
                    line: usize::try_from(line).unwrap_or(usize::MAX),
                    snippet: snippet.to_owned(),
                    message: message.to_owned(),
                    allowed: false,
                });
            }
            files.insert(path.clone(), CachedFile { hash, violations });
        }
        AnalysisCache {
            files,
            hits: 0,
            misses: 0,
        }
    }

    /// Returns the cached findings when the content hash matches.
    pub fn lookup(&mut self, path: &str, hash: u64) -> Option<Vec<Violation>> {
        match self.files.get(path) {
            Some(f) if f.hash == hash => {
                self.hits += 1;
                Some(f.violations.clone())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records freshly computed findings (stored without `allowed`).
    pub fn store(&mut self, path: &str, hash: u64, violations: &[Violation]) {
        let violations = violations
            .iter()
            .map(|v| Violation {
                allowed: false,
                ..v.clone()
            })
            .collect();
        self.files
            .insert(path.to_owned(), CachedFile { hash, violations });
    }

    /// Writes the cache as deterministic JSON (paths sorted by the
    /// `BTreeMap`, violations in their computed order).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the parent directory
    /// or writing the file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let files = self
            .files
            .iter()
            .map(|(p, f)| {
                let violations = f
                    .violations
                    .iter()
                    .map(|v| {
                        Value::Obj(vec![
                            ("rule".to_owned(), Value::Str(v.rule.to_owned())),
                            ("line".to_owned(), Value::Num(v.line.to_string())),
                            ("snippet".to_owned(), Value::Str(v.snippet.clone())),
                            ("message".to_owned(), Value::Str(v.message.clone())),
                        ])
                    })
                    .collect();
                let entry = Value::Obj(vec![
                    ("hash".to_owned(), Value::Str(f.hash.to_string())),
                    ("violations".to_owned(), Value::Arr(violations)),
                ]);
                (p.clone(), entry)
            })
            .collect();
        let doc = Value::Obj(vec![
            ("version".to_owned(), Value::Num("1".to_owned())),
            ("files".to_owned(), Value::Obj(files)),
        ]);
        let mut out = String::new();
        doc.write(&mut out);
        out.push('\n');
        fs::write(path, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RULES: &[&str] = &["wall-clock", "no-panic"];

    fn violation(line: usize) -> Violation {
        Violation {
            rule: "wall-clock",
            path: "crates/x/src/a.rs".to_owned(),
            line,
            snippet: "Instant::now()".to_owned(),
            message: "m".to_owned(),
            allowed: true, // must be stripped on store
        }
    }

    #[test]
    fn fnv_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn round_trip_preserves_findings() {
        let dir = std::env::temp_dir().join(format!("xtask-cache-{}", std::process::id()));
        let path = dir.join("cache.json");
        let mut cache = AnalysisCache::default();
        cache.store("crates/x/src/a.rs", 42, &[violation(7)]);
        cache.save(&path).unwrap();
        let mut loaded = AnalysisCache::load(&path, RULES);
        let hit = loaded.lookup("crates/x/src/a.rs", 42).unwrap();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].line, 7);
        assert_eq!(hit[0].rule, "wall-clock");
        assert!(!hit[0].allowed);
        assert!(loaded.lookup("crates/x/src/a.rs", 43).is_none());
        assert_eq!((loaded.hits, loaded.misses), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_rule_drops_the_entry() {
        let dir = std::env::temp_dir().join(format!("xtask-cache2-{}", std::process::id()));
        let path = dir.join("cache.json");
        let mut cache = AnalysisCache::default();
        cache.store("a.rs", 1, &[violation(1)]);
        cache.save(&path).unwrap();
        let mut loaded = AnalysisCache::load(&path, &["no-panic"]);
        assert!(loaded.lookup("a.rs", 1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_loads_empty() {
        let dir = std::env::temp_dir().join(format!("xtask-cache3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        std::fs::write(&path, "{ not json").unwrap();
        let mut loaded = AnalysisCache::load(&path, RULES);
        assert!(loaded.lookup("a.rs", 1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
