//! The static-analysis subsystem behind `cargo xtask check`.
//!
//! Pipeline: [`token`] re-tokenizes the lexer's blanked lines,
//! [`parse`] builds a per-file item tree with dataflow facts (lets,
//! loops, method chains), [`passes`] runs the per-file determinism
//! lints over it, and [`modgraph`] validates the workspace crate-layer
//! DAG. [`cache`] keeps warm re-runs incremental and [`sarif`] emits
//! the SARIF 2.1.0 report next to the JSON one.
//!
//! Per-file work fans out on the `tagdist-par` pool; diagnostics merge
//! in deterministic (path, line, rule) order, so the report is
//! byte-identical at any `TAGDIST_THREADS`.

pub mod cache;
pub mod modgraph;
pub mod parse;
pub mod passes;
pub mod sarif;
pub mod token;

/// Every rule the checker can report, sorted: the token-level rules
/// from [`crate::rules`], the per-file passes, and the workspace-level
/// `layer-dag` and `allow-stale` checks.
pub const ALL_RULES: &[&str] = &[
    "allow-stale",
    "errors-doc",
    "float-eq",
    "float-reduction",
    "layer-dag",
    "no-panic",
    "unordered-iter",
    "unsafe-scope",
    "unseeded-rng",
    "wall-clock",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_registry_is_sorted_and_complete() {
        let mut sorted = ALL_RULES.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, ALL_RULES);
        for rule in crate::rules::RULES {
            assert!(ALL_RULES.contains(rule), "{rule} missing from registry");
        }
        for rule in passes::FILE_PASS_RULES {
            assert!(ALL_RULES.contains(rule), "{rule} missing from registry");
        }
    }
}
