//! `cargo xtask` entry point; see [`xtask`] for the library.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{benchgate, check_workspace, load_allowlist, to_json};

const USAGE: &str = "\
usage: cargo xtask <command> [options]

commands:
  check           run the workspace's domain lints over the library crates
  bench-report    build and run the wall-clock + allocation report
                  (tagdist-bench's `bench-report` binary, release profile)
  bench-gate      run `bench-report --smoke` and fail if its deterministic
                  counters regress against the checked-in bench-baseline.json

check options:
  --json <path>   write the JSON report here (default: target/xtask-check.json)
  --root <path>   workspace root (default: auto-detected from CARGO_MANIFEST_DIR)
  --quiet         suppress per-violation output

bench-report options:
  --smoke         tiny corpus, one run per stage (the CI wiring)
  any extra arguments are forwarded to the benchmark binary
  (first positional argument = output path, default BENCH_PR3.json,
  or bench-smoke.json under --smoke)

bench-gate options:
  --update          rewrite bench-baseline.json from the current measurement
  --input <path>    reuse an existing smoke report instead of re-running
                    the benchmark (default: run it into target/bench-smoke.json)
  --baseline <path> baseline file (default: bench-baseline.json at the root)
  --root <path>     workspace root (default: auto-detected)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xtask: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Returns `Ok(true)` when the tree is clean.
fn run(args: &[String]) -> Result<bool, String> {
    let mut iter = args.iter();
    let command = iter.next().ok_or("missing command")?;
    if command == "bench-report" {
        return run_bench_report(iter.as_slice());
    }
    if command == "bench-gate" {
        return run_bench_gate(iter.as_slice());
    }
    if command != "check" {
        return Err(format!("unknown command `{command}`"));
    }
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(PathBuf::from(iter.next().ok_or("--json needs a path")?));
            }
            "--root" => {
                root = Some(PathBuf::from(iter.next().ok_or("--root needs a path")?));
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root()?,
    };
    let allow = load_allowlist(&root)?;
    let outcome = check_workspace(&root, &allow).map_err(|e| e.to_string())?;

    let json = to_json(&outcome);
    let json_path = json_path.unwrap_or_else(|| root.join("target/xtask-check.json"));
    if let Some(parent) = json_path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(&json_path, json)
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;

    if !quiet {
        for v in outcome.active() {
            println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
            println!("    {}", v.snippet);
        }
    }
    println!(
        "xtask check: {} files, {} active violation(s), {} allowlisted; report at {}",
        outcome.files_checked,
        outcome.active_count(),
        outcome.allowed_count(),
        json_path.display()
    );
    Ok(outcome.is_clean())
}

/// Shells out to the release-profile benchmark binary, forwarding any
/// extra arguments (so `cargo xtask bench-report out.json` works).
fn run_bench_report(extra: &[String]) -> Result<bool, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let status = std::process::Command::new(cargo)
        .args([
            "run",
            "--release",
            "-p",
            "tagdist-bench",
            "--bin",
            "bench-report",
            "--",
        ])
        .args(extra)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    Ok(status.success())
}

/// Runs the smoke benchmark (unless `--input` reuses a report) and
/// gates its deterministic counters against `bench-baseline.json`.
fn run_bench_gate(args: &[String]) -> Result<bool, String> {
    let mut update = false;
    let mut input: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--input" => {
                input = Some(PathBuf::from(iter.next().ok_or("--input needs a path")?));
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(iter.next().ok_or("--baseline needs a path")?));
            }
            "--root" => {
                root = Some(PathBuf::from(iter.next().ok_or("--root needs a path")?));
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root()?,
    };
    let baseline_path = baseline.unwrap_or_else(|| root.join("bench-baseline.json"));
    let input_path = match input {
        Some(path) => path,
        None => {
            let path = root.join("target/bench-smoke.json");
            let shown = path.display().to_string();
            if !run_bench_report(&["--smoke".to_owned(), shown.clone()])? {
                return Err(format!("bench-report --smoke {shown} failed"));
            }
            path
        }
    };

    let text = std::fs::read_to_string(&input_path)
        .map_err(|e| format!("cannot read {}: {e}", input_path.display()))?;
    let doc = tagdist_obs::Value::parse(&text)
        .map_err(|e| format!("cannot parse {}: {e}", input_path.display()))?;
    if update {
        let rendered = benchgate::render_baseline(&doc)?;
        std::fs::write(&baseline_path, rendered)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "bench-gate: baseline refreshed at {}",
            baseline_path.display()
        );
        return Ok(true);
    }
    let measured = benchgate::deterministic_counters(&doc)?;
    let base = benchgate::load_counters(&baseline_path)?;
    let diffs = benchgate::compare(&base, &measured);
    let (text, clean) = benchgate::report(&diffs);
    print!("{text}");
    Ok(clean)
}

/// The workspace root: two levels above this crate's manifest.
fn default_root() -> Result<PathBuf, String> {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map_err(|_| "CARGO_MANIFEST_DIR unset; pass --root".to_owned())?;
    let path = PathBuf::from(manifest);
    path.ancestors()
        .nth(2)
        .map(PathBuf::from)
        .ok_or_else(|| "cannot locate workspace root; pass --root".to_owned())
}
