//! `cargo xtask` entry point; see [`xtask`] for the library.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::{check_workspace, load_allowlist, to_json};

const USAGE: &str = "\
usage: cargo xtask <command> [options]

commands:
  check           run the workspace's domain lints over the library crates
  bench-report    build and run the PR 3 wall-clock + allocation report
                  (tagdist-bench's `bench-report` binary, release profile)

check options:
  --json <path>   write the JSON report here (default: target/xtask-check.json)
  --root <path>   workspace root (default: auto-detected from CARGO_MANIFEST_DIR)
  --quiet         suppress per-violation output

bench-report options:
  --smoke         tiny corpus, one run per stage (the CI wiring)
  any extra arguments are forwarded to the benchmark binary
  (first positional argument = output path, default BENCH_PR3.json,
  or bench-smoke.json under --smoke)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xtask: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Returns `Ok(true)` when the tree is clean.
fn run(args: &[String]) -> Result<bool, String> {
    let mut iter = args.iter();
    let command = iter.next().ok_or("missing command")?;
    if command == "bench-report" {
        return run_bench_report(iter.as_slice());
    }
    if command != "check" {
        return Err(format!("unknown command `{command}`"));
    }
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(PathBuf::from(iter.next().ok_or("--json needs a path")?));
            }
            "--root" => {
                root = Some(PathBuf::from(iter.next().ok_or("--root needs a path")?));
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root()?,
    };
    let allow = load_allowlist(&root)?;
    let outcome = check_workspace(&root, &allow).map_err(|e| e.to_string())?;

    let json = to_json(&outcome);
    let json_path = json_path.unwrap_or_else(|| root.join("target/xtask-check.json"));
    if let Some(parent) = json_path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(&json_path, json)
        .map_err(|e| format!("cannot write {}: {e}", json_path.display()))?;

    if !quiet {
        for v in outcome.active() {
            println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
            println!("    {}", v.snippet);
        }
    }
    println!(
        "xtask check: {} files, {} active violation(s), {} allowlisted; report at {}",
        outcome.files_checked,
        outcome.active_count(),
        outcome.allowed_count(),
        json_path.display()
    );
    Ok(outcome.is_clean())
}

/// Shells out to the release-profile benchmark binary, forwarding any
/// extra arguments (so `cargo xtask bench-report out.json` works).
fn run_bench_report(extra: &[String]) -> Result<bool, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let status = std::process::Command::new(cargo)
        .args([
            "run",
            "--release",
            "-p",
            "tagdist-bench",
            "--bin",
            "bench-report",
            "--",
        ])
        .args(extra)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    Ok(status.success())
}

/// The workspace root: two levels above this crate's manifest.
fn default_root() -> Result<PathBuf, String> {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map_err(|_| "CARGO_MANIFEST_DIR unset; pass --root".to_owned())?;
    let path = PathBuf::from(manifest);
    path.ancestors()
        .nth(2)
        .map(PathBuf::from)
        .ok_or_else(|| "cannot locate workspace root; pass --root".to_owned())
}
