//! `cargo xtask` entry point; see [`xtask`] for the library.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::analysis::cache::DEFAULT_CACHE_REL;
use xtask::{benchgate, check_workspace_with, load_allowlist, to_json, to_sarif, CheckConfig};

const USAGE: &str = "\
usage: cargo xtask <command> [options]

commands:
  check           run the workspace's domain lints and determinism
                  analysis over the library crates (and xtask itself)
  bench-report    build and run the wall-clock + allocation report
                  (tagdist-bench's `bench-report` binary, release
                  profile), then append analyzer cold/warm self-timing
  bench-gate      run `bench-report --smoke` and fail if its deterministic
                  counters regress against the checked-in bench-baseline.json

check options:
  --json <path>   write the JSON report here (default: target/xtask-check.json)
  --sarif <path>  also write a SARIF 2.1.0 report here
  --format <fmt>  stdout format: text (default), json, or sarif
  --no-cache      ignore and do not write the per-file analysis cache
                  (default: target/xtask-analysis-cache.json)
  --root <path>   workspace root (default: auto-detected from CARGO_MANIFEST_DIR)
  --quiet         suppress per-violation output

bench-report options:
  --smoke         tiny corpus, one run per stage (the CI wiring)
  any extra arguments are forwarded to the benchmark binary
  (first positional argument = output path, default BENCH_PR10.json,
  or bench-smoke.json under --smoke)

bench-gate options:
  --update          rewrite bench-baseline.json from the current measurement
  --input <path>    reuse an existing smoke report instead of re-running
                    the benchmark (default: run it into target/bench-smoke.json)
  --baseline <path> baseline file (default: bench-baseline.json at the root)
  --root <path>     workspace root (default: auto-detected)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xtask: {message}");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Returns `Ok(true)` when the tree is clean.
fn run(args: &[String]) -> Result<bool, String> {
    let mut iter = args.iter();
    let command = iter.next().ok_or("missing command")?;
    if command == "bench-report" {
        return run_bench_report(iter.as_slice());
    }
    if command == "bench-gate" {
        return run_bench_gate(iter.as_slice());
    }
    if command != "check" {
        return Err(format!("unknown command `{command}`"));
    }
    let mut json_path: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut format = "text".to_owned();
    let mut no_cache = false;
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => {
                json_path = Some(PathBuf::from(iter.next().ok_or("--json needs a path")?));
            }
            "--sarif" => {
                sarif_path = Some(PathBuf::from(iter.next().ok_or("--sarif needs a path")?));
            }
            "--format" => {
                format = iter.next().ok_or("--format needs text|json|sarif")?.clone();
                if !matches!(format.as_str(), "text" | "json" | "sarif") {
                    return Err(format!("unknown format `{format}`"));
                }
            }
            "--no-cache" => no_cache = true,
            "--root" => {
                root = Some(PathBuf::from(iter.next().ok_or("--root needs a path")?));
            }
            "--quiet" => quiet = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root()?,
    };
    let allow = load_allowlist(&root)?;
    let config = CheckConfig {
        cache_path: (!no_cache).then(|| root.join(DEFAULT_CACHE_REL)),
        threads: None,
    };
    let outcome = check_workspace_with(&root, &allow, &config).map_err(|e| e.to_string())?;

    let json = to_json(&outcome);
    let json_path = json_path.unwrap_or_else(|| root.join("target/xtask-check.json"));
    write_report(&json_path, &json)?;
    let sarif = to_sarif(&outcome, xtask::ALL_RULES);
    if let Some(sarif_path) = &sarif_path {
        write_report(sarif_path, &sarif)?;
    }

    match format.as_str() {
        "json" => print!("{json}"),
        "sarif" => print!("{sarif}"),
        _ => {
            if !quiet {
                for v in outcome.active() {
                    println!("{}:{}: [{}] {}", v.path, v.line, v.rule, v.message);
                    println!("    {}", v.snippet);
                }
            }
            println!(
                "xtask check: {} files ({} cached), {} active violation(s), {} allowlisted; \
                 report at {}",
                outcome.files_checked,
                outcome.cache_hits,
                outcome.active_count(),
                outcome.allowed_count(),
                json_path.display()
            );
        }
    }
    Ok(outcome.is_clean())
}

/// Writes a report file, creating its parent directory.
fn write_report(path: &PathBuf, contents: &str) -> Result<(), String> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
    }
    std::fs::write(path, contents).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Shells out to the release-profile benchmark binary, forwarding any
/// extra arguments (so `cargo xtask bench-report out.json` works),
/// then appends the analyzer's cold/warm self-timing to the report.
fn run_bench_report(extra: &[String]) -> Result<bool, String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    let status = std::process::Command::new(cargo)
        .args([
            "run",
            "--release",
            "-p",
            "tagdist-bench",
            "--bin",
            "bench-report",
            "--",
        ])
        .args(extra)
        .status()
        .map_err(|e| format!("cannot launch cargo: {e}"))?;
    if !status.success() {
        return Ok(false);
    }
    // The binary's output path: first positional argument, or its
    // documented defaults.
    let smoke = extra.iter().any(|a| a == "--smoke");
    let out_path = extra
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if smoke {
                "bench-smoke.json".to_owned()
            } else {
                "BENCH_PR10.json".to_owned()
            }
        });
    match append_analyzer_timing(&out_path) {
        Ok(()) => {}
        Err(e) => eprintln!("xtask: skipping analyzer self-timing for {out_path}: {e}"),
    }
    Ok(true)
}

/// Times a cold and a warm analyzer run and merges the result into the
/// benchmark report as an `analyzer_self` object.
fn append_analyzer_timing(out_path: &str) -> Result<(), String> {
    use tagdist_obs::Value;
    let root = default_root()?;
    let bench =
        xtask::selfbench::time_analyzer(&root, &root.join("target/xtask-selfbench-cache.json"))
            .map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(out_path).map_err(|e| e.to_string())?;
    let mut doc = Value::parse(&text).map_err(|e| e.to_string())?;
    let entry = Value::Obj(vec![
        ("cold_us".to_owned(), Value::Num(bench.cold_us.to_string())),
        ("warm_us".to_owned(), Value::Num(bench.warm_us.to_string())),
        ("files".to_owned(), Value::Num(bench.files.to_string())),
        (
            "warm_cache_hits".to_owned(),
            Value::Num(bench.warm_hits.to_string()),
        ),
    ]);
    match &mut doc {
        Value::Obj(entries) => {
            entries.retain(|(k, _)| k != "analyzer_self");
            entries.push(("analyzer_self".to_owned(), entry));
        }
        _ => return Err("report is not a JSON object".to_owned()),
    }
    let mut rendered = String::new();
    doc.write(&mut rendered);
    rendered.push('\n');
    std::fs::write(out_path, rendered).map_err(|e| e.to_string())?;
    println!(
        "xtask bench-report: analyzer self-run {} files, cold {} us, warm {} us ({} cache hits)",
        bench.files, bench.cold_us, bench.warm_us, bench.warm_hits
    );
    Ok(())
}

/// Runs the smoke benchmark (unless `--input` reuses a report) and
/// gates its deterministic counters against `bench-baseline.json`.
fn run_bench_gate(args: &[String]) -> Result<bool, String> {
    let mut update = false;
    let mut input: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--input" => {
                input = Some(PathBuf::from(iter.next().ok_or("--input needs a path")?));
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(iter.next().ok_or("--baseline needs a path")?));
            }
            "--root" => {
                root = Some(PathBuf::from(iter.next().ok_or("--root needs a path")?));
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root()?,
    };
    let baseline_path = baseline.unwrap_or_else(|| root.join("bench-baseline.json"));
    let input_path = match input {
        Some(path) => path,
        None => {
            let path = root.join("target/bench-smoke.json");
            let shown = path.display().to_string();
            if !run_bench_report(&["--smoke".to_owned(), shown.clone()])? {
                return Err(format!("bench-report --smoke {shown} failed"));
            }
            path
        }
    };

    let text = std::fs::read_to_string(&input_path)
        .map_err(|e| format!("cannot read {}: {e}", input_path.display()))?;
    let doc = tagdist_obs::Value::parse(&text)
        .map_err(|e| format!("cannot parse {}: {e}", input_path.display()))?;
    if update {
        let rendered = benchgate::render_baseline(&doc)?;
        std::fs::write(&baseline_path, rendered)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!(
            "bench-gate: baseline refreshed at {}",
            baseline_path.display()
        );
        return Ok(true);
    }
    let measured = benchgate::deterministic_counters(&doc)?;
    let base = benchgate::load_counters(&baseline_path)?;
    let diffs = benchgate::compare(&base, &measured);
    let (text, clean) = benchgate::report(&diffs);
    print!("{text}");
    Ok(clean)
}

/// The workspace root: two levels above this crate's manifest.
fn default_root() -> Result<PathBuf, String> {
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map_err(|_| "CARGO_MANIFEST_DIR unset; pass --root".to_owned())?;
    let path = PathBuf::from(manifest);
    path.ancestors()
        .nth(2)
        .map(PathBuf::from)
        .ok_or_else(|| "cannot locate workspace root; pass --root".to_owned())
}
