//! A minimal Rust source scanner.
//!
//! The checker does not parse Rust; it only needs to know, per line,
//! which bytes are *code* (as opposed to comments, string contents or
//! `#[cfg(test)]` bodies) and what the doc comments above an item say.
//! This module produces that view: a blanked copy of the source where
//! every non-code byte is replaced by a space, so the rule scanners can
//! use naive substring matching without being fooled by literals.

/// Per-line classification of one source file.
#[derive(Debug, Clone)]
pub struct CleanFile {
    /// Source lines with comments and literal contents blanked.
    /// String delimiters themselves are kept (as `"`), so quoted
    /// regions still occupy their original columns.
    pub code: Vec<String>,
    /// Doc-comment text (`///` / `//!`) per line; empty for non-doc
    /// lines.
    pub docs: Vec<String>,
    /// Lines inside `#[cfg(test)]` modules (rules skip these).
    pub in_test: Vec<bool>,
    /// Lines sanctioned by a preceding `#[expect(clippy::...)]`
    /// attribute naming a panic-family lint.
    pub sanctioned: Vec<bool>,
    /// The original source lines, for snippets.
    pub raw: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    DocComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

/// Clippy lints whose `#[expect]` also sanctions the `no-panic` rule:
/// the compiler verifies the expectation is fulfilled, so the site is
/// already audited.
const SANCTIONING_LINTS: &[&str] = &["unwrap_used", "expect_used", "panic", "missing_panics_doc"];

/// Scans `source` into a [`CleanFile`].
pub fn clean(source: &str) -> CleanFile {
    let raw: Vec<String> = source.lines().map(str::to_owned).collect();
    let (code, docs) = blank_non_code(source);
    let in_test = mark_test_modules(&code);
    let sanctioned = mark_sanctioned(&code);
    CleanFile {
        code,
        docs,
        in_test,
        sanctioned,
        raw,
    }
}

/// Replaces comments and literal contents with spaces, collecting doc
/// comments on the side.
#[expect(
    clippy::expect_used,
    reason = "pushed a line for every consumed newline just above"
)]
fn blank_non_code(source: &str) -> (Vec<String>, Vec<String>) {
    let mut code = Vec::new();
    let mut docs = Vec::new();
    let mut code_line = String::new();
    let mut doc_line = String::new();
    let mut state = State::Code;

    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        if c == '\n' {
            if matches!(state, State::LineComment | State::DocComment) {
                state = State::Code;
            }
            code.push(std::mem::take(&mut code_line));
            docs.push(std::mem::take(&mut doc_line));
            i += 1;
            continue;
        }
        match state {
            State::Code => match c {
                '/' if next == Some('/') => {
                    let third = bytes.get(i + 2).copied();
                    let fourth = bytes.get(i + 3).copied();
                    // `////…` separators are plain comments; `///` and
                    // `//!` are docs.
                    let is_doc = (third == Some('/') && fourth != Some('/')) || third == Some('!');
                    state = if is_doc {
                        State::DocComment
                    } else {
                        State::LineComment
                    };
                    code_line.push_str("  ");
                    i += 2;
                    if is_doc {
                        i += 1; // swallow the marker char
                        code_line.push(' ');
                    }
                }
                '/' if next == Some('*') => {
                    state = State::BlockComment(1);
                    code_line.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    code_line.push('"');
                    i += 1;
                }
                'r' | 'b' if starts_raw_string(&bytes, i) => {
                    let (hashes, consumed) = raw_string_open(&bytes, i);
                    state = State::RawStr(hashes);
                    for _ in 0..consumed {
                        code_line.push(' ');
                    }
                    code_line.push('"');
                    i += consumed + 1;
                }
                'b' if next == Some('\'') => {
                    state = State::Char;
                    code_line.push_str(" '");
                    i += 2;
                }
                '\'' => {
                    if is_char_literal(&bytes, i) {
                        state = State::Char;
                        code_line.push('\'');
                    } else {
                        // A lifetime: keep it as code.
                        code_line.push('\'');
                    }
                    i += 1;
                }
                _ => {
                    code_line.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                code_line.push(' ');
                i += 1;
            }
            State::DocComment => {
                doc_line.push(c);
                code_line.push(' ');
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    code_line.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    code_line.push_str("  ");
                    i += 2;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' if next == Some('\n') => {
                    // Line-continuation escape: let the newline be
                    // handled by the top of the loop.
                    code_line.push(' ');
                    i += 1;
                }
                '\\' => {
                    code_line.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Code;
                    code_line.push('"');
                    i += 1;
                }
                _ => {
                    code_line.push(' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' && closes_raw_string(&bytes, i, hashes) {
                    state = State::Code;
                    code_line.push('"');
                    for _ in 0..hashes {
                        code_line.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::Char => match c {
                '\\' => {
                    code_line.push_str("  ");
                    i += 2;
                }
                '\'' => {
                    state = State::Code;
                    code_line.push('\'');
                    i += 1;
                }
                _ => {
                    code_line.push(' ');
                    i += 1;
                }
            },
        }
        // A string or char literal may legally contain a newline we
        // just skipped over (escapes); resync line counters.
        while code_line.matches('\n').count() > 0 {
            let pos = code_line.find('\n').expect("counted above");
            let rest = code_line.split_off(pos + 1);
            code_line.pop();
            code.push(std::mem::replace(&mut code_line, rest));
            docs.push(std::mem::take(&mut doc_line));
        }
    }
    code.push(code_line);
    docs.push(doc_line);
    (code, docs)
}

fn starts_raw_string(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Returns `(hash_count, chars_before_the_quote)`.
fn raw_string_open(bytes: &[char], i: usize) -> (u32, usize) {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (hashes, j - i)
}

fn closes_raw_string(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Distinguishes `'a'` (literal) from `'a` (lifetime).
fn is_char_literal(bytes: &[char], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some('\\') => true,
        Some(&c) if c != '\'' => bytes.get(i + 2) == Some(&'\''),
        _ => false,
    }
}

/// Flags every line inside a `#[cfg(test)] mod … { … }` body.
fn mark_test_modules(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    for (lineno, line) in code.iter().enumerate() {
        if !line.contains("#[cfg(test)]") {
            continue;
        }
        // Find the block opened after the attribute and blank it.
        let Some((open_line, open_col)) = next_open_brace(code, lineno, line_col_after(line))
        else {
            continue;
        };
        if let Some(close_line) = matching_close(code, open_line, open_col) {
            for flag in in_test.iter_mut().take(close_line + 1).skip(lineno) {
                *flag = true;
            }
        }
    }
    in_test
}

fn line_col_after(line: &str) -> usize {
    line.find("#[cfg(test)]")
        .map_or(0, |p| p + "#[cfg(test)]".len())
}

/// First `{` at or after (`line`, `col`).
fn next_open_brace(code: &[String], line: usize, col: usize) -> Option<(usize, usize)> {
    for (l, text) in code.iter().enumerate().skip(line) {
        let start = if l == line { col } else { 0 };
        if let Some(p) = text.get(start..).and_then(|s| s.find('{')) {
            return Some((l, start + p));
        }
    }
    None
}

/// Line containing the `}` matching the `{` at (`line`, `col`).
fn matching_close(code: &[String], line: usize, col: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (l, text) in code.iter().enumerate().skip(line) {
        let start = if l == line { col } else { 0 };
        for c in text.get(start..)?.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(l);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Flags lines covered by an `#[expect(clippy::…)]` attribute naming a
/// panic-family lint. The attribute sanctions the item it precedes: up
/// to the matching `}` of the first block, or the first top-level `;`.
fn mark_sanctioned(code: &[String]) -> Vec<bool> {
    let mut sanctioned = vec![false; code.len()];
    for (lineno, line) in code.iter().enumerate() {
        let Some(attr_col) = line.find("#[expect(") else {
            continue;
        };
        // Collect the attribute text up to the matching `]`.
        let Some((attr_text, after_line, after_col)) = collect_attr(code, lineno, attr_col) else {
            continue;
        };
        if !SANCTIONING_LINTS
            .iter()
            .any(|lint| attr_text.contains(lint))
        {
            continue;
        }
        let end = item_end(code, after_line, after_col).unwrap_or(code.len() - 1);
        for flag in sanctioned.iter_mut().take(end + 1).skip(lineno) {
            *flag = true;
        }
    }
    sanctioned
}

/// Gathers `#[ … ]` starting at (`line`, `col`); returns the attribute
/// text and the position just past its closing `]`.
fn collect_attr(code: &[String], line: usize, col: usize) -> Option<(String, usize, usize)> {
    let mut depth = 0i32;
    let mut text = String::new();
    for (l, full) in code.iter().enumerate().skip(line) {
        let start = if l == line { col } else { 0 };
        for (offset, c) in full.get(start..)?.char_indices() {
            text.push(c);
            match c {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((text, l, start + offset + 1));
                    }
                }
                _ => {}
            }
        }
        text.push('\n');
    }
    None
}

/// End line of the item starting after an attribute: the matching `}`
/// of the first `{`, or the first `;` seen before any brace.
fn item_end(code: &[String], line: usize, col: usize) -> Option<usize> {
    for (l, full) in code.iter().enumerate().skip(line) {
        let start = if l == line { col } else { 0 };
        for (offset, c) in full.get(start..)?.char_indices() {
            match c {
                '{' => return matching_close(code, l, start + offset),
                ';' => return Some(l),
                _ => {}
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let cf = clean("let x = \"unwrap()\"; // .unwrap()\nlet y = 1;\n");
        assert!(!cf.code[0].contains("unwrap"));
        assert!(cf.code[0].contains("let x"));
        assert_eq!(cf.code[1], "let y = 1;");
    }

    #[test]
    fn doc_comments_are_captured() {
        let cf = clean("/// # Errors\n///\n/// Stuff.\npub fn f() {}\n");
        assert!(cf.docs[0].contains("# Errors"));
        assert!(!cf.code[0].contains("Errors"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let cf = clean("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n");
        assert!(cf.code[0].contains("&'a str"));
        assert!(!cf.code[1].contains('x'));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let cf = clean("let s = r#\"panic!(\"no\")\"#;\nlet t = 0;\n");
        assert!(!cf.code[0].contains("panic"));
    }

    #[test]
    fn test_modules_are_marked() {
        let src =
            "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let cf = clean(src);
        assert!(!cf.in_test[0]);
        assert!(cf.in_test[1] && cf.in_test[2] && cf.in_test[3] && cf.in_test[4]);
        assert!(!cf.in_test[5]);
    }

    #[test]
    fn expect_attr_sanctions_following_block() {
        let src = "#[expect(clippy::expect_used, reason = \"x\")]\nfn f() {\n    y.expect(\"ok\");\n}\nfn g() { z.expect(\"bad\"); }\n";
        let cf = clean(src);
        assert!(cf.sanctioned[0] && cf.sanctioned[1] && cf.sanctioned[2] && cf.sanctioned[3]);
        assert!(!cf.sanctioned[4]);
    }

    #[test]
    fn expect_attr_sanctions_following_statement() {
        let src = "#[expect(clippy::expect_used, reason = \"x\")]\nlet v = w.expect(\"ok\");\nlet u = t.expect(\"bad\");\n";
        let cf = clean(src);
        assert!(cf.sanctioned[0] && cf.sanctioned[1]);
        assert!(!cf.sanctioned[2]);
    }
}
