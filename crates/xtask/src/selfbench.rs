//! Analyzer self-benchmark: cold-vs-warm wall-clock timing.
//!
//! This is the one xtask module allowed to read the real clock (the
//! `wall-clock` pass allowlists it by path): `cargo xtask bench-report`
//! records how long a full analyzer run takes with an empty cache and
//! how long the warm re-run takes, so BENCH_PR*.json tracks the
//! incremental speedup alongside the domain benchmarks.

use std::fs;
use std::path::Path;
use std::time::Instant;

use crate::checker::{self, CheckConfig};

/// Timing of one cold+warm analyzer pair.
#[derive(Debug, Clone, Copy)]
pub struct SelfBench {
    /// Full run with the cache removed first, in microseconds.
    pub cold_us: u64,
    /// Immediate re-run against the populated cache, in microseconds.
    pub warm_us: u64,
    /// Files analyzed per run.
    pub files: usize,
    /// Cache hits observed on the warm run (should equal `files`).
    pub warm_hits: usize,
}

fn micros_since(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Runs the analyzer twice against `root` — cold (cache deleted),
/// then warm — timing both.
///
/// # Errors
///
/// Propagates analyzer I/O errors.
pub fn time_analyzer(root: &Path, cache_path: &Path) -> std::io::Result<SelfBench> {
    let allow = checker::load_allowlist(root)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let config = CheckConfig {
        cache_path: Some(cache_path.to_path_buf()),
        threads: None,
    };
    let _ = fs::remove_file(cache_path);
    let start = Instant::now();
    let cold = checker::check_workspace_with(root, &allow, &config)?;
    let cold_us = micros_since(start);
    let start = Instant::now();
    let warm = checker::check_workspace_with(root, &allow, &config)?;
    let warm_us = micros_since(start);
    Ok(SelfBench {
        cold_us,
        warm_us,
        files: cold.files_checked,
        warm_hits: warm.cache_hits,
    })
}
