//! The `xtask-allow.toml` allowlist.
//!
//! Every entry sanctions specific flagged lines and must carry a
//! `reason`; the checker reports suppressed findings separately so the
//! allowlist stays auditable. The format is a small TOML subset parsed
//! by hand (the workspace vendors no TOML crate):
//!
//! ```toml
//! [[allow]]
//! rule = "no-panic"               # which rule to suppress
//! path = "crates/geo/src/vec.rs"  # path suffix match
//! contains = "expect(\"world\")"  # optional: snippet substring
//! reason = "operator impls cannot return Result"
//! ```

use crate::rules::Violation;

/// One allowlist entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier this entry suppresses.
    pub rule: String,
    /// Path suffix the violation's path must end with.
    pub path: String,
    /// Substring the violation's snippet must contain (empty = any).
    pub contains: String,
    /// Mandatory justification.
    pub reason: String,
    /// 1-based line of this entry's `[[allow]]` header (for the
    /// `allow-stale` diagnostics).
    pub line: usize,
}

/// Parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct AllowList {
    entries: Vec<AllowEntry>,
}

/// A malformed allowlist line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowParseError {
    /// 1-based line in the allowlist file.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AllowParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "xtask-allow.toml:{}: {}", self.line, self.message)
    }
}

impl AllowList {
    /// An empty allowlist (nothing suppressed).
    pub fn empty() -> AllowList {
        AllowList::default()
    }

    /// Parses the TOML-subset allowlist format.
    ///
    /// # Errors
    ///
    /// Returns [`AllowParseError`] on unknown keys, values outside
    /// double quotes, entries without a `reason`, or keys appearing
    /// before any `[[allow]]` header.
    pub fn parse(text: &str) -> Result<AllowList, AllowParseError> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = i + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                entries.push(AllowEntry {
                    line: lineno,
                    ..AllowEntry::default()
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(AllowParseError {
                    line: lineno,
                    message: format!("expected `key = \"value\"`, got {line:?}"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| AllowParseError {
                    line: lineno,
                    message: format!("value for `{key}` must be double-quoted"),
                })?
                .replace("\\\"", "\"")
                .replace("\\\\", "\\");
            let Some(entry) = entries.last_mut() else {
                return Err(AllowParseError {
                    line: lineno,
                    message: "key outside any [[allow]] table".to_owned(),
                });
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "contains" => entry.contains = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(AllowParseError {
                        line: lineno,
                        message: format!("unknown key `{other}`"),
                    });
                }
            }
        }
        if let Some(pos) = entries.iter().position(|e| e.reason.is_empty()) {
            return Err(AllowParseError {
                line: 0,
                message: format!("allow entry #{} has no reason", pos + 1),
            });
        }
        Ok(AllowList { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Does any entry sanction this violation?
    pub fn covers(&self, v: &Violation) -> bool {
        self.entries.iter().any(|e| AllowList::entry_covers(e, v))
    }

    /// Does this specific entry sanction the violation? (Used by the
    /// `allow-stale` pass to find entries that match nothing.)
    pub fn entry_covers(e: &AllowEntry, v: &Violation) -> bool {
        e.rule == v.rule
            && v.path.ends_with(&e.path)
            && (e.contains.is_empty() || v.snippet.contains(&e.contains))
    }

    /// The parsed entries, in file order.
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, path: &str, snippet: &str) -> Violation {
        Violation {
            rule,
            path: path.to_owned(),
            line: 1,
            snippet: snippet.to_owned(),
            message: String::new(),
            allowed: false,
        }
    }

    #[test]
    fn parses_and_matches() {
        let list = AllowList::parse(
            "# header comment\n[[allow]]\nrule = \"no-panic\"\npath = \"src/vec.rs\"\ncontains = \"expect\"\nreason = \"ops cannot fail\"\n",
        )
        .unwrap();
        assert_eq!(list.len(), 1);
        assert!(list.covers(&violation(
            "no-panic",
            "crates/geo/src/vec.rs",
            "x.expect(\"y\")"
        )));
        assert!(!list.covers(&violation(
            "float-eq",
            "crates/geo/src/vec.rs",
            "x.expect(\"y\")"
        )));
        assert!(!list.covers(&violation(
            "no-panic",
            "crates/geo/src/dist.rs",
            "x.expect(\"y\")"
        )));
        assert!(!list.covers(&violation(
            "no-panic",
            "crates/geo/src/vec.rs",
            "x.unwrap()"
        )));
    }

    #[test]
    fn reason_is_mandatory() {
        let err = AllowList::parse("[[allow]]\nrule = \"no-panic\"\npath = \"a\"\n").unwrap_err();
        assert!(err.message.contains("no reason"));
    }

    #[test]
    fn rejects_unknown_keys_and_bare_values() {
        assert!(AllowList::parse("[[allow]]\nrle = \"x\"\n").is_err());
        assert!(AllowList::parse("[[allow]]\nrule = no-panic\n").is_err());
        assert!(AllowList::parse("rule = \"x\"\n").is_err());
    }
}
