//! `tagdist-par` — deterministic workspace parallelism.
//!
//! The study pipeline is embarrassingly parallel per video and per tag
//! (Eq. 1 inversion, Eq. 3 aggregation, leave-one-out prediction, the
//! E5b/E7 sweeps), but the reproduction's first commitment is
//! *bit-identical output for a given seed*. This crate provides the
//! one parallelism primitive the workspace uses everywhere: a scoped
//! worker pool whose results — floating-point rounding included — do
//! not depend on the worker count.
//!
//! Three operations cover every hot path:
//!
//! * [`Pool::par_map`] — independent per-item work, results in index
//!   order (Eq. 1 inversion, crawler level fan-out, E5b per-video
//!   decomposition, E7 per-country placement);
//! * [`Pool::par_chunks`] — per-chunk work with reusable scratch
//!   space (the E6 leave-one-out evaluation reuses one prediction
//!   buffer per chunk);
//! * [`Pool::par_fold`] — sharded reduction with a deterministic
//!   chunk-ordered merge tree (Eq. 3 per-tag aggregation).
//!
//! The worker count comes from the `TAGDIST_THREADS` environment knob
//! ([`THREADS_ENV`]), defaulting to the machine's available
//! parallelism. Chunk boundaries and merge order are a function of the
//! input length only (see [`chunk`]), which is what makes the
//! determinism contract hold at any thread count — the property
//! `tests/determinism.rs` pins for the whole pipeline.
//!
//! Zero dependencies: the pool is `std::thread::scope` plus one atomic
//! cursor; there is no `unsafe` and nothing to configure beyond the
//! thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]
#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

pub mod chunk;
mod pool;

pub use pool::{available_threads, env_threads, Pool, THREADS_ENV};

#[cfg(test)]
mod proptests {
    use crate::Pool;
    use proptest::prelude::*;

    proptest! {
        /// Sharded fold + merge equals the plain serial fold for an
        /// associative operation, at every thread count.
        #[test]
        fn par_fold_matches_serial_sum(
            values in proptest::collection::vec(0u64..1_000_000, 0..3_000),
            threads in 1usize..10
        ) {
            let serial: u64 = values.iter().sum();
            let pool = Pool::new(threads);
            let sharded = pool.par_fold(&values, || 0u64, |a, _, &v| a + v, |a, b| a + b);
            prop_assert_eq!(sharded, serial);
        }

        /// par_map is exactly the serial enumerate-map at any thread
        /// count.
        #[test]
        fn par_map_matches_serial_map(
            values in proptest::collection::vec(-1_000i64..1_000, 0..3_000),
            threads in 1usize..10
        ) {
            let serial: Vec<i64> = values.iter().enumerate()
                .map(|(i, &v)| v * 3 + i as i64).collect();
            let parallel = Pool::new(threads)
                .par_map(&values, |i, &v| v * 3 + i as i64);
            prop_assert_eq!(parallel, serial);
        }
    }
}
