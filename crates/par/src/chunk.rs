//! The thread-count-independent chunking policy.
//!
//! Every parallel operation in this crate splits its input into
//! contiguous chunks whose boundaries are a function of the input
//! *length only* — never of the worker count. This is the foundation
//! of the workspace's determinism contract: a sharded reduction merges
//! its per-chunk accumulators in the same order (and therefore with
//! the same floating-point rounding) whether it ran on one thread or
//! sixteen, so `TAGDIST_THREADS` can change wall-clock time but never
//! a single output bit.

/// Minimum items per chunk. Inputs at or below this size are processed
/// serially — the work would not amortize a thread spawn.
pub const MIN_CHUNK: usize = 64;

/// Maximum number of chunks any input splits into. Bounds the serial
/// merge cost of [`Pool::par_fold`](crate::Pool::par_fold) while
/// leaving enough chunks for work-stealing to balance load on any
/// realistic core count.
pub const MAX_CHUNKS: usize = 32;

/// The chunk length used for a length-`n` input (at least 1).
///
/// Derived from `n` alone: `max(ceil(n / MAX_CHUNKS), MIN_CHUNK)`.
pub fn chunk_len(n: usize) -> usize {
    n.div_ceil(MAX_CHUNKS).max(MIN_CHUNK)
}

/// Number of chunks a length-`n` input splits into (0 for `n == 0`).
pub fn chunk_count(n: usize) -> usize {
    n.div_ceil(chunk_len(n))
}

/// Maximum number of shards a fold splits into. Folds pay a *merge*
/// per shard — and each shard may carry a large accumulator (Eq. 3
/// aggregation holds one row per tag) — so they use far fewer, larger
/// chunks than maps do.
pub const MAX_FOLD_CHUNKS: usize = 8;

/// Minimum items per fold shard; below this the merge cost cannot
/// amortize.
pub const MIN_FOLD_CHUNK: usize = 512;

/// The shard length used when folding a length-`n` input (at least 1).
///
/// Derived from `n` alone: `max(ceil(n / MAX_FOLD_CHUNKS),
/// MIN_FOLD_CHUNK)`.
pub fn fold_chunk_len(n: usize) -> usize {
    n.div_ceil(MAX_FOLD_CHUNKS).max(MIN_FOLD_CHUNK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_exactly() {
        for n in [0usize, 1, 63, 64, 65, 1_000, 77_104, 1_063_844] {
            let len = chunk_len(n);
            let count = chunk_count(n);
            assert!(len >= 1);
            assert!(count <= MAX_CHUNKS);
            // Chunks tile [0, n) exactly.
            assert!(count * len >= n);
            if n > 0 {
                assert!((count - 1) * len < n, "n={n} len={len} count={count}");
            } else {
                assert_eq!(count, 0);
            }
        }
    }

    #[test]
    fn policy_ignores_thread_count() {
        // The policy has no thread parameter by construction; pin the
        // observable values so a future "optimization" that sneaks the
        // worker count in breaks loudly.
        assert_eq!(chunk_len(100), MIN_CHUNK);
        assert_eq!(chunk_len(77_104), 77_104_usize.div_ceil(MAX_CHUNKS));
        assert_eq!(chunk_count(0), 0);
        assert_eq!(chunk_count(1), 1);
        assert_eq!(fold_chunk_len(100), MIN_FOLD_CHUNK);
        assert_eq!(
            fold_chunk_len(77_104),
            77_104_usize.div_ceil(MAX_FOLD_CHUNKS)
        );
    }
}
