//! The scoped worker pool.

use std::sync::atomic::{AtomicUsize, Ordering};

use tagdist_obs::Recorder;

use crate::chunk;

/// Environment variable selecting the worker-thread count for every
/// pool built with [`Pool::from_env`]. Unset, empty or unparsable
/// values fall back to the machine's available parallelism.
pub const THREADS_ENV: &str = "TAGDIST_THREADS";

/// Resolves the worker-thread count from [`THREADS_ENV`], falling back
/// to [`std::thread::available_parallelism`] (and to 1 if even that is
/// unavailable). Always at least 1.
///
/// Read on every call rather than cached, so tests can sweep thread
/// counts within one process.
pub fn env_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(available_threads)
}

/// The machine's available parallelism, or 1 when undetectable.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A scoped worker pool with deterministic results.
///
/// Workers are `std::thread::scope` threads that live for the duration
/// of one parallel call — no `'static` bounds, no `unsafe`, no idle
/// threads between calls. Work is distributed by chunk stealing over
/// an atomic cursor, but chunk *boundaries* come from the
/// length-only policy in [`crate::chunk`], so results (including
/// floating-point rounding in [`Pool::par_fold`] reductions) are
/// bit-identical at any thread count.
///
/// # Example
///
/// ```
/// use tagdist_par::Pool;
///
/// let pool = Pool::new(4);
/// let squares = pool.par_map(&[1.0_f64, 2.0, 3.0], |_, &x| x * x);
/// assert_eq!(squares, vec![1.0, 4.0, 9.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
    /// Where dispatch metrics go; disabled (free) unless a caller
    /// attached a recorder via [`Pool::with_obs`].
    obs: Recorder,
}

impl Default for Pool {
    /// Equivalent to [`Pool::from_env`].
    fn default() -> Pool {
        Pool::from_env()
    }
}

impl Pool {
    /// Creates a pool with an explicit worker count (floored at 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
            obs: Recorder::disabled(),
        }
    }

    /// Attaches a metrics recorder: every subsequent parallel call
    /// records deterministic dispatch counters (`par.calls`,
    /// `par.items`, `par.chunks` — functions of input length only) and
    /// thread-dependent scheduling stats (`par.fanouts`, `par.workers`,
    /// `par.tasks`).
    #[must_use]
    pub fn with_obs(mut self, obs: &Recorder) -> Pool {
        self.obs = obs.clone();
        self
    }

    /// Creates a pool sized by the [`THREADS_ENV`] knob (default: the
    /// machine's available parallelism).
    pub fn from_env() -> Pool {
        Pool::new(env_threads())
    }

    /// The worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in index order.
    ///
    /// `f` receives each item's index alongside the item. Output is
    /// identical to the serial `items.iter().enumerate().map(..)` at
    /// any thread count.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` on a worker thread.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.record_dispatch(items.len(), chunk::chunk_count(items.len()));
        if self.serial_for(items.len()) {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let parts = self.run_chunks(items, |start, slice| {
            slice
                .iter()
                .enumerate()
                .map(|(j, t)| f(start + j, t))
                .collect::<Vec<U>>()
        });
        let mut out = Vec::with_capacity(items.len());
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Like [`Pool::par_map`], but schedules every item as its own unit
    /// of work instead of batching by the length-only chunk policy.
    ///
    /// Use for *short* inputs of *heavy* items — e.g. one entry per
    /// country, each scanning a whole catalogue — where the standard
    /// policy would collapse to a single serial chunk. Results are
    /// still returned in index order, and each item's computation is
    /// independent of scheduling, so output is identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` on a worker thread.
    pub fn par_map_heavy<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        // One item per unit of work: the chunk count equals the length.
        self.record_dispatch(items.len(), items.len());
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        self.run_sized_chunks(items, 1, |start, slice| f(start, &slice[0]))
    }

    /// Applies `f` to each chunk of `items` (boundaries from the
    /// length-only policy in [`crate::chunk`]), returning the per-chunk
    /// results in chunk order. `f` receives the chunk's starting index.
    ///
    /// Useful when per-item work wants reusable scratch space: allocate
    /// once per chunk instead of once per item.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `f` on a worker thread.
    pub fn par_chunks<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &[T]) -> U + Sync,
    {
        self.record_dispatch(items.len(), chunk::chunk_count(items.len()));
        self.run_chunks(items, f)
    }

    /// Sharded fold with a deterministic merge: each shard folds into
    /// its own accumulator (seeded by `init`), and the per-shard
    /// accumulators are merged pairwise along a balanced binary tree
    /// in shard order.
    ///
    /// Shards follow the coarser fold policy in [`crate::chunk`]
    /// (fewer, larger chunks than [`Pool::par_map`]): every shard costs
    /// a merge, and fold accumulators can be large. Because both the
    /// shard boundaries and the merge tree depend only on
    /// `items.len()`, the result — floating-point rounding included —
    /// is bit-identical at any thread count. Returns `init()` for an
    /// empty input.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `init`, `fold` or `merge`
    /// on a worker thread.
    pub fn par_fold<T, A, I, F, M>(&self, items: &[T], init: I, fold: F, merge: M) -> A
    where
        T: Sync,
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(A, usize, &T) -> A + Sync,
        M: Fn(A, A) -> A,
    {
        let n = items.len();
        let shards = if n == 0 {
            0
        } else {
            n.div_ceil(chunk::fold_chunk_len(n))
        };
        self.record_dispatch(n, shards);
        let accs =
            self.run_sized_chunks(items, chunk::fold_chunk_len(items.len()), |start, slice| {
                let mut acc = init();
                for (j, t) in slice.iter().enumerate() {
                    acc = fold(acc, start + j, t);
                }
                acc
            });
        reduce_in_tree(accs, merge).unwrap_or_else(init)
    }

    /// Writes results *in place*: tiles `items` into chunks under the
    /// length-only policy, pairs each input chunk with the matching
    /// `stride`-elements-per-item window of `out`, and applies `f` to
    /// every `(start, input_chunk, output_chunk)` triple. Per-chunk
    /// return values come back in chunk order.
    ///
    /// This is the engine for filling one large flat buffer (e.g. a
    /// row-major matrix) without per-chunk result buffers and a
    /// concatenation pass. Each output window is handed to exactly one
    /// worker, so no synchronization guards the data itself; and since
    /// every window's contents depend only on its input chunk, the
    /// buffer is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != items.len() * stride`, and propagates
    /// the first panic raised by `f` on a worker thread.
    pub fn par_fill<T, U, R, F>(&self, items: &[T], out: &mut [U], stride: usize, f: F) -> Vec<R>
    where
        T: Sync,
        U: Send,
        R: Send,
        F: Fn(usize, &[T], &mut [U]) -> R + Sync,
    {
        let n = items.len();
        assert_eq!(
            out.len(),
            n * stride,
            "output buffer must hold {stride} elements per item"
        );
        self.record_dispatch(n, chunk::chunk_count(n));
        let clen = chunk::chunk_len(n).max(1);
        // `stride == 0` means every output window is empty; chunks_mut
        // rejects a zero width, so hand out fresh empty slices instead.
        let ochunks: Vec<&mut [U]> = if stride == 0 {
            (0..n.div_ceil(clen)).map(|_| Default::default()).collect()
        } else {
            out.chunks_mut(clen * stride).collect()
        };
        if self.serial_for(n) {
            return items
                .chunks(clen)
                .zip(ochunks)
                .enumerate()
                .map(|(c, (ichunk, ochunk))| f(c * clen, ichunk, ochunk))
                .collect();
        }
        // Hand (input chunk, output window) pairs to workers through a
        // queue: each pair is taken exactly once, so the disjoint
        // `&mut` windows never alias. The lock is held only to pop the
        // next pair (a few dozen acquisitions total).
        let triples: Vec<(usize, &[T], &mut [U])> = items
            .chunks(clen)
            .zip(ochunks)
            .enumerate()
            .map(|(c, (ichunk, ochunk))| (c, ichunk, ochunk))
            .collect();
        let nchunks = triples.len();
        let workers = self.threads.min(nchunks);
        self.record_fanout(workers, nchunks);
        let queue = std::sync::Mutex::new(triples.into_iter());
        let mut tagged: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, R)> = Vec::new();
                        loop {
                            let next = queue
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .next();
                            let Some((c, ichunk, ochunk)) = next else {
                                break;
                            };
                            done.push((c, f(c * clen, ichunk, ochunk)));
                        }
                        done
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(nchunks);
            for handle in handles {
                match handle.join() {
                    Ok(done) => all.extend(done),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            all
        });
        tagged.sort_unstable_by_key(|&(c, _)| c);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// True when a length-`n` input should skip the fan-out entirely.
    fn serial_for(&self, n: usize) -> bool {
        self.threads == 1 || n <= chunk::MIN_CHUNK
    }

    /// Records the deterministic dispatch counters for one parallel
    /// call. Both `n` and `chunks` are functions of the input length
    /// alone (never of the serial/parallel branch taken), so these
    /// counters are identical at any thread count.
    fn record_dispatch(&self, n: usize, chunks: usize) {
        if self.obs.is_enabled() {
            self.obs.add("par.calls", 1);
            self.obs.add("par.items", n as u64);
            self.obs.add("par.chunks", chunks as u64);
        }
    }

    /// Records one actual thread fan-out — scheduling stats, which
    /// legitimately vary with `TAGDIST_THREADS`.
    fn record_fanout(&self, workers: usize, tasks: usize) {
        if self.obs.is_enabled() {
            self.obs.add_sched("par.fanouts", 1);
            self.obs.add_sched("par.workers", workers as u64);
            self.obs.add_sched("par.tasks", tasks as u64);
        }
    }

    /// Chunked engine entry point under the length-only policy.
    fn run_chunks<T, U, G>(&self, items: &[T], g: G) -> Vec<U>
    where
        T: Sync,
        U: Send,
        G: Fn(usize, &[T]) -> U + Sync,
    {
        self.run_sized_chunks(items, chunk::chunk_len(items.len()), g)
    }

    /// The engine: applies `g` to every `clen`-sized chunk, stealing
    /// chunks off an atomic cursor, and returns the results sorted into
    /// chunk order.
    fn run_sized_chunks<T, U, G>(&self, items: &[T], clen: usize, g: G) -> Vec<U>
    where
        T: Sync,
        U: Send,
        G: Fn(usize, &[T]) -> U + Sync,
    {
        let n = items.len();
        let clen = clen.max(1);
        let nchunks = n.div_ceil(clen);
        let workers = self.threads.min(nchunks);
        if workers <= 1 {
            return items
                .chunks(clen)
                .enumerate()
                .map(|(c, slice)| g(c * clen, slice))
                .collect();
        }
        self.record_fanout(workers, nchunks);
        let cursor = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, U)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, U)> = Vec::new();
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= nchunks {
                                break;
                            }
                            let start = c * clen;
                            let end = (start + clen).min(n);
                            done.push((c, g(start, &items[start..end])));
                        }
                        done
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(nchunks);
            for handle in handles {
                match handle.join() {
                    Ok(done) => all.extend(done),
                    // A worker died mid-reduction: the call cannot
                    // return a partial result, so surface the worker's
                    // own panic on the calling thread.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            all
        });
        tagged.sort_unstable_by_key(|&(c, _)| c);
        tagged.into_iter().map(|(_, u)| u).collect()
    }
}

/// Pairwise reduction in a balanced binary tree, left to right:
/// `[a, b, c, d, e]` → `[ab, cd, e]` → `[abcd, e]` → `abcde`. The tree
/// shape depends only on the input length.
fn reduce_in_tree<A, M>(mut accs: Vec<A>, merge: M) -> Option<A>
where
    M: Fn(A, A) -> A,
{
    while accs.len() > 1 {
        let mut next = Vec::with_capacity(accs.len().div_ceil(2));
        let mut iter = accs.into_iter();
        while let Some(left) = iter.next() {
            next.push(match iter.next() {
                Some(right) => merge(left, right),
                None => left,
            });
        }
        accs = next;
    }
    accs.pop()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_index_order() {
        let items: Vec<usize> = (0..10_000).collect();
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.par_map(&items, |i, &v| {
                assert_eq!(i, v);
                v * 2
            });
            assert_eq!(out.len(), items.len());
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * 2));
        }
    }

    #[test]
    fn par_map_handles_empty_and_tiny_inputs() {
        let pool = Pool::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.par_map(&empty, |_, &v| v).is_empty());
        assert_eq!(pool.par_map(&[7u32], |_, &v| v + 1), vec![8]);
    }

    #[test]
    fn par_map_heavy_keeps_order_on_short_inputs() {
        // 60 items sits under MIN_CHUNK: par_map would go serial, but
        // par_map_heavy still fans out — with identical output.
        let items: Vec<usize> = (0..60).collect();
        let reference = Pool::new(1).par_map_heavy(&items, |i, &v| (i, v * 3));
        for threads in [2, 4, 8] {
            let out = Pool::new(threads).par_map_heavy(&items, |i, &v| (i, v * 3));
            assert_eq!(out, reference, "threads={threads}");
        }
        assert!(reference
            .iter()
            .enumerate()
            .all(|(i, &(j, v))| i == j && v == i * 3));
    }

    #[test]
    fn par_chunks_tiles_the_input_in_order() {
        let items: Vec<usize> = (0..5_000).collect();
        let pool = Pool::new(4);
        let spans = pool.par_chunks(&items, |start, slice| (start, slice.len()));
        // Spans tile [0, n) contiguously.
        let mut expected_start = 0;
        for &(start, len) in &spans {
            assert_eq!(start, expected_start);
            expected_start += len;
        }
        assert_eq!(expected_start, items.len());
    }

    #[test]
    fn par_fold_sums_exactly() {
        let items: Vec<u64> = (0..100_000).collect();
        let serial: u64 = items.iter().sum();
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let sum = pool.par_fold(&items, || 0u64, |acc, _, &v| acc + v, |a, b| a + b);
            assert_eq!(sum, serial);
        }
    }

    #[test]
    fn par_fold_floats_are_thread_count_invariant() {
        // Floating-point addition is not associative, so this only
        // holds because chunking and merge order ignore the thread
        // count — the determinism contract in one assert.
        let items: Vec<f64> = (0..50_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let reference = Pool::new(1).par_fold(&items, || 0.0f64, |a, _, &v| a + v, |a, b| a + b);
        for threads in [2, 3, 4, 8, 16] {
            let sum =
                Pool::new(threads).par_fold(&items, || 0.0f64, |a, _, &v| a + v, |a, b| a + b);
            assert!(
                sum.to_bits() == reference.to_bits(),
                "{threads} threads drifted: {sum} vs {reference}"
            );
        }
    }

    #[test]
    fn par_fold_empty_returns_init() {
        let pool = Pool::new(4);
        let empty: Vec<u8> = Vec::new();
        let folded = pool.par_fold(&empty, || 41u64, |a, _, _| a, |a, _| a);
        assert_eq!(folded, 41);
    }

    #[test]
    fn par_fold_indexes_every_item_once() {
        let items: Vec<u64> = vec![1; 10_000];
        let pool = Pool::new(8);
        let indices = pool.par_fold(
            &items,
            Vec::new,
            |mut acc: Vec<usize>, i, _| {
                acc.push(i);
                acc
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        // Tree merge in chunk order keeps indices globally sorted.
        assert_eq!(indices.len(), items.len());
        assert!(indices.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn reduce_in_tree_is_left_balanced() {
        let merged = reduce_in_tree(
            vec!["a", "b", "c", "d", "e"]
                .into_iter()
                .map(String::from)
                .collect(),
            |a, b| format!("({a}{b})"),
        );
        assert_eq!(merged.as_deref(), Some("(((ab)(cd))e)"));
        assert_eq!(reduce_in_tree(Vec::<u8>::new(), |a, _| a), None);
    }

    #[test]
    fn worker_panics_propagate() {
        let items: Vec<usize> = (0..10_000).collect();
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).par_map(&items, |i, _| {
                assert!(i != 5_000, "boom");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn dispatch_counters_ignore_thread_count() {
        use tagdist_obs::Recorder;
        let items: Vec<u64> = (0..10_000).collect();
        let mut reports = Vec::new();
        for threads in [1, 2, 8] {
            let r = Recorder::new();
            let pool = Pool::new(threads).with_obs(&r);
            let _ = pool.par_map(&items, |_, &v| v);
            let _ = pool.par_map_heavy(&items[..20], |_, &v| v);
            let _ = pool.par_chunks(&items, |_, c| c.len());
            let _ = pool.par_fold(&items, || 0u64, |a, _, &v| a + v, |a, b| a + b);
            let mut out = vec![0u64; items.len()];
            let _ = pool.par_fill(&items, &mut out, 1, |_, c, w: &mut [u64]| {
                w.copy_from_slice(c);
            });
            let report = r.finish();
            // Single-threaded pools never fan out; others may. Either
            // way the deterministic subtree must not change.
            if threads == 1 {
                assert!(report.sched.is_empty());
            } else {
                assert!(report.sched["par.fanouts"] >= 1);
            }
            reports.push(report.deterministic_json());
        }
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[0], reports[2]);
        assert!(reports[0].contains("\"par.calls\":5"), "{}", reports[0]);
    }

    #[test]
    fn thread_count_floors_at_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::from_env().threads() >= 1);
        assert!(available_threads() >= 1);
    }

    #[test]
    fn env_knob_parses_and_falls_back() {
        // Exercise the parser without touching the process
        // environment (other tests run concurrently).
        let parse = |s: &str| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|&t| t >= 1)
                .unwrap_or_else(available_threads)
        };
        assert_eq!(parse(" 6 "), 6);
        assert_eq!(parse("0"), available_threads());
        assert_eq!(parse("lots"), available_threads());
    }

    #[test]
    fn par_fill_tiles_the_output_in_place() {
        let items: Vec<usize> = (0..500).collect();
        let expected: Vec<usize> = items.iter().flat_map(|&i| [i, 10 * i]).collect();
        for threads in [1, 2, 8] {
            let mut out = vec![0usize; items.len() * 2];
            let starts =
                Pool::new(threads).par_fill(&items, &mut out, 2, |start, chunk, window| {
                    for (j, &item) in chunk.iter().enumerate() {
                        window[2 * j] = item;
                        window[2 * j + 1] = 10 * item;
                    }
                    start
                });
            assert_eq!(out, expected, "threads={threads}");
            assert!(starts.windows(2).all(|w| w[0] < w[1]), "chunk order");
        }
    }

    #[test]
    fn par_fill_handles_empty_and_zero_stride_inputs() {
        let pool = Pool::new(4);
        let mut out: Vec<u8> = Vec::new();
        let results: Vec<usize> = pool.par_fill(&[0u8; 0], &mut out, 3, |_, _, _| 1);
        assert!(results.is_empty());
        // stride 0: every window is empty, but every chunk still runs.
        let items = [1u8; 300];
        let sizes = pool.par_fill(&items, &mut out, 0, |_, chunk, window: &mut [u8]| {
            assert!(window.is_empty());
            chunk.len()
        });
        assert_eq!(sizes.iter().sum::<usize>(), items.len());
    }

    #[test]
    #[should_panic(expected = "elements per item")]
    fn par_fill_rejects_a_mis_sized_buffer() {
        let mut out = vec![0u8; 5];
        let _: Vec<()> = Pool::new(2).par_fill(&[1u8, 2], &mut out, 2, |_, _, _| ());
    }

    #[test]
    fn par_fill_propagates_worker_panics() {
        let items: Vec<usize> = (0..10_000).collect();
        let mut out = vec![0usize; items.len()];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _: Vec<()> = Pool::new(4).par_fill(&items, &mut out, 1, |start, _, _| {
                assert!(start < 5_000, "boom");
            });
        }));
        assert!(caught.is_err());
    }
}
