//! E3 & E4 — Figs. 2–3: geographic distributions of `pop` (global)
//! and `favela` (local). Regenerates both figures and measures the
//! Eq. 3 aggregation plus profile construction.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tagdist::reconstruct::TagViewTable;
use tagdist::render_distribution;
use tagdist::tags::{profiles, TagProfile};
use tagdist_bench::bench_study;

fn print_figures_once() {
    let s = bench_study();
    for (fig, name) in [("Fig. 2 (E3)", "pop"), ("Fig. 3 (E4)", "favela")] {
        let Some(p) = s.tag_profile(name) else {
            continue;
        };
        println!("\n=== {fig}: tag '{name}' ===");
        print!("{}", render_distribution(&p.dist, 8));
        println!(
            "top share {:.1}%, JS from traffic {:.4} bits",
            100.0 * p.top_share,
            p.js_from_traffic
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_figures_once();
    let study = bench_study();
    let clean = study.clean();
    let recon = study.reconstruction();
    let traffic = study.traffic();

    let mut group = c.benchmark_group("e3_e4");
    group.sample_size(20);
    group.bench_function("eq3_aggregate_all_tags", |b| {
        b.iter(|| black_box(TagViewTable::aggregate(clean, recon)).populated_tags())
    });
    let table = study.tag_table();
    let pop = clean.tags().id("pop").expect("pop interned");
    group.bench_function("profile_single_tag", |b| {
        b.iter(|| black_box(TagProfile::build(pop, clean, table, traffic)).is_some())
    });
    group.bench_function("profile_all_tags_min5", |b| {
        b.iter(|| black_box(profiles(clean, table, traffic, 5)).len())
    });
    group.bench_function("top_tags_by_views", |b| {
        b.iter(|| black_box(table.top_by_views(20)).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
