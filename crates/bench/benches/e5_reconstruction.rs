//! E5 — reconstruction quality and throughput, with the
//! Alexa-prior-noise ablation. Regenerates the error table and
//! measures the full Eq. 1 inversion over the corpus.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tagdist::geo::{GeoDist, TrafficModel};
use tagdist::reconstruct::{ErrorReport, Reconstruction};
use tagdist_bench::bench_study;

fn print_table_once() {
    let s = bench_study();
    let clean = s.clean();
    let truth: Vec<GeoDist> = s.true_distributions();
    let base = TrafficModel::from_distribution(s.platform().true_traffic().clone());
    println!("\n=== E5: reconstruction error vs prior noise ===");
    println!("{:<16} {:>9} {:>11}", "prior noise", "mean JS", "top-1 acc");
    for noise in [0.0, 0.05, 0.10, 0.20, 0.40] {
        let traffic = base.perturbed(noise, 7);
        let recon = Reconstruction::compute(clean, traffic.distribution()).expect("recon");
        let est: Vec<GeoDist> = (0..clean.len())
            .map(|p| recon.distribution(p).expect("mass"))
            .collect();
        let report = ErrorReport::compare(&truth, &est).expect("aligned");
        println!(
            "{:<16} {:>9.4} {:>10.1}%",
            format!("±{:.0}%", 100.0 * noise),
            report.js.mean,
            100.0 * report.top_country_accuracy
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table_once();
    let study = bench_study();
    let clean = study.clean();
    let base = TrafficModel::from_distribution(study.platform().true_traffic().clone());

    let mut group = c.benchmark_group("e5");
    group.sample_size(20);
    for noise in [0.0, 0.20] {
        let traffic = base.perturbed(noise, 7);
        group.bench_with_input(
            BenchmarkId::new(
                "reconstruct_corpus",
                format!("noise{:.0}pct", 100.0 * noise),
            ),
            &traffic,
            |b, traffic| {
                b.iter(|| {
                    black_box(Reconstruction::compute(clean, traffic.distribution()))
                        .expect("recon")
                        .len()
                })
            },
        );
    }
    let recon = study.reconstruction();
    let truth = study.true_distributions();
    group.bench_function("error_report", |b| {
        b.iter(|| {
            let est: Vec<GeoDist> = (0..clean.len())
                .map(|p| recon.distribution(p).expect("mass"))
                .collect();
            black_box(ErrorReport::compare(&truth, &est))
                .expect("aligned")
                .n
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
