//! E6 — the tag-prediction conjecture. Regenerates the evaluation
//! table and measures prediction throughput.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tagdist::tags::{LocalityBreakdown, PredictionEvaluation, Predictor, SmoothedPredictor};
use tagdist_bench::bench_study;

fn print_table_once() {
    let s = bench_study();
    println!("\n=== E6: tags predict where a video is viewed ===");
    println!("{}", s.prediction_evaluation());
    println!("by locality class of the dominant tag:");
    print!("{}", s.prediction_by_locality());
    let vs_truth = s.prediction_error_vs_truth();
    let prior = s.prior_error();
    println!(
        "vs ground truth: prediction JS {:.4}, prior JS {:.4}",
        vs_truth.js.mean, prior.js.mean
    );
    println!();
}

fn bench(c: &mut Criterion) {
    print_table_once();
    let study = bench_study();
    let clean = study.clean();
    let recon = study.reconstruction();
    let table = study.tag_table();
    let traffic = study.traffic();

    let mut group = c.benchmark_group("e6");
    group.sample_size(10);
    group.bench_function("evaluate_corpus_loo", |b| {
        b.iter(|| black_box(PredictionEvaluation::evaluate(clean, recon, table, traffic)).n)
    });
    let predictor = Predictor::new(table, traffic);
    let sample: Vec<_> = clean.iter().take(1_000).collect();
    group.bench_function("predict_1k_videos", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for v in &sample {
                acc += black_box(predictor.predict(v.tags, None)).top_share();
            }
            acc
        })
    });
    let smoothed = SmoothedPredictor::new(table, traffic, 10_000.0);
    group.bench_function("predict_1k_videos_smoothed", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for v in &sample {
                acc += black_box(smoothed.predict(v.tags, None)).top_share();
            }
            acc
        })
    });
    group.bench_function("locality_breakdown", |b| {
        b.iter(|| {
            black_box(LocalityBreakdown::evaluate(
                clean,
                recon,
                table,
                traffic,
                &tagdist::tags::ClassifyThresholds::default(),
            ))
            .rows
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
