//! E1 — §2 dataset statistics: regenerates the paper's accounting
//! block and measures the crawl/filter/stats stages.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tagdist::crawler::{crawl, crawl_parallel, CrawlConfig};
use tagdist::dataset::{filter, DatasetStats};
use tagdist_bench::bench_study;

fn print_table_once() {
    let s = bench_study();
    let r = s.filter_report();
    println!("\n=== E1: §2 dataset statistics (paper → ours) ===");
    println!("crawled:        1,063,844 → {}", r.crawled);
    println!(
        "no tags:        6,736 (0.63%) → {} ({:.2}%)",
        r.no_tags,
        100.0 * r.no_tags as f64 / r.crawled as f64
    );
    println!(
        "kept:           691,349 (64.99%) → {} ({:.2}%)",
        r.kept,
        100.0 * r.keep_ratio()
    );
    let stats = s.dataset_stats();
    println!("unique tags:    705,415 → {}", stats.unique_tags);
    println!("total views:    173,288,616,473 → {}", stats.total_views);
    println!();
}

fn bench(c: &mut Criterion) {
    print_table_once();
    let study = bench_study();
    let platform = study.platform();

    let mut group = c.benchmark_group("e1");
    group.sample_size(10);

    let mut crawl_cfg = CrawlConfig::default();
    crawl_cfg.with_budget(5_000);
    group.bench_function("snowball_crawl_5k", |b| {
        b.iter(|| black_box(crawl(platform, &crawl_cfg)).stats.fetched)
    });
    let mut par_cfg = crawl_cfg.clone();
    par_cfg.with_threads(4);
    group.bench_function("snowball_crawl_5k_parallel", |b| {
        b.iter(|| black_box(crawl_parallel(platform, &par_cfg)).stats.fetched)
    });

    // Filtering and statistics over the full crawl.
    let outcome = crawl(platform, &CrawlConfig::default());
    group.bench_function("section2_filter", |b| {
        b.iter(|| black_box(filter(&outcome.dataset)).len())
    });
    let clean = filter(&outcome.dataset);
    group.bench_function("section2_stats", |b| {
        b.iter(|| black_box(DatasetStats::compute(&clean)).unique_tags)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
