//! E2 — Fig. 1: the most-viewed video's popularity map. Regenerates
//! the figure and measures the Map-Chart forward/inverse codec.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tagdist::geo::{PopularityVector, TrafficModel};
use tagdist::reconstruct::reconstruct_views;
use tagdist::render_popularity_map;
use tagdist_bench::bench_study;

fn print_figure_once() {
    let s = bench_study();
    let video = s.fig1_most_viewed();
    println!(
        "\n=== E2 / Fig. 1: most-viewed video ({} views) ===",
        video.total_views
    );
    print!("{}", render_popularity_map(video.popularity, 10));
    println!(
        "saturated countries: {} (paper: USA & Singapore tied at 61)\n",
        video.popularity.saturated().len()
    );
}

fn bench(c: &mut Criterion) {
    print_figure_once();
    let study = bench_study();
    let video = study.fig1_most_viewed();
    let truth = study
        .platform()
        .ground_truth(video.key)
        .expect("fig1 video exists");
    let traffic = TrafficModel::reference(tagdist::geo::world());

    let mut group = c.benchmark_group("e2");
    let intensity = truth
        .views_by_country
        .hadamard_div(study.platform().ytube())
        .expect("same world");
    group.bench_function("mapchart_quantize", |b| {
        b.iter(|| black_box(PopularityVector::quantize(&intensity)).is_ok())
    });
    let pop = video.popularity.to_vector();
    group.bench_function("eq1_inversion_single_video", |b| {
        b.iter(|| {
            black_box(reconstruct_views(
                &pop,
                video.total_views,
                traffic.distribution(),
            ))
            .is_ok()
        })
    });
    group.bench_function("render_map", |b| {
        b.iter(|| black_box(render_popularity_map(video.popularity, 15)).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
