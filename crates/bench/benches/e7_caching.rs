//! E7 — proactive geographic caching. Regenerates the
//! hit-rate-vs-capacity series for every policy and measures the
//! simulator.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use tagdist::cache::{
    run_hybrid, run_reactive, run_static, run_with_latency, DiurnalModel, LfuCache, LruCache,
    Placement, RequestStream, SlruCache, TimedRequestStream,
};
use tagdist::geo::GeoDist;
use tagdist::geo::LatencyModel;
use tagdist::tags::Predictor;
use tagdist_bench::bench_study;

struct Setup {
    truth: Vec<GeoDist>,
    predicted: Vec<GeoDist>,
    weights: Vec<f64>,
    stream: RequestStream,
    countries: usize,
}

fn setup() -> Setup {
    let s = bench_study();
    let truth = s.true_distributions();
    let weights = s.view_weights();
    let stream = RequestStream::generate(&truth, &weights, 100_000, 2014);
    let predictor = Predictor::new(s.tag_table(), s.traffic());
    let predicted: Vec<GeoDist> = s
        .clean()
        .iter()
        .enumerate()
        .map(|(pos, v)| predictor.predict(v.tags, s.reconstruction().views(pos)))
        .collect();
    Setup {
        truth,
        predicted,
        weights,
        stream,
        countries: s.world().len(),
    }
}

fn print_series_once(x: &Setup) {
    let catalogue = x.truth.len();
    println!("\n=== E7: hit rate vs per-country capacity ===");
    println!(
        "{:>9} {:>8} {:>8} {:>9} {:>8} {:>8} {:>8}",
        "capacity", "oracle", "tags", "geoblind", "random", "lru", "lfu"
    );
    for pct in [0.5, 1.0, 2.0, 5.0, 10.0] {
        let cap = ((catalogue as f64) * pct / 100.0).ceil() as usize;
        let rate = |p: &Placement| 100.0 * run_static(p, &x.stream).hit_rate();
        let oracle = rate(&Placement::predictive(
            "oracle",
            x.countries,
            cap,
            &x.truth,
            &x.weights,
        ));
        let tags = rate(&Placement::predictive(
            "tags",
            x.countries,
            cap,
            &x.predicted,
            &x.weights,
        ));
        let blind = rate(&Placement::geo_blind(x.countries, cap, &x.weights));
        let random = rate(&Placement::random(x.countries, catalogue, cap, 99));
        let lru = 100.0 * run_reactive(|| LruCache::new(cap), cap, &x.stream).hit_rate();
        let lfu = 100.0 * run_reactive(|| LfuCache::new(cap), cap, &x.stream).hit_rate();
        println!(
            "{cap:>9} {oracle:>7.1}% {tags:>7.1}% {blind:>8.1}% {random:>7.1}% {lru:>7.1}% {lfu:>7.1}%"
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    let x = setup();
    print_series_once(&x);
    let catalogue = x.truth.len();
    let cap = catalogue / 50; // 2 %

    let mut group = c.benchmark_group("e7");
    group.sample_size(10);
    group.bench_function("placement_tag_predictive", |b| {
        b.iter(|| {
            black_box(Placement::predictive(
                "tags",
                x.countries,
                cap,
                &x.predicted,
                &x.weights,
            ))
            .capacity()
        })
    });
    for (name, placement) in [
        (
            "static_oracle",
            Placement::predictive("oracle", x.countries, cap, &x.truth, &x.weights),
        ),
        (
            "static_geoblind",
            Placement::geo_blind(x.countries, cap, &x.weights),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("replay", name), &placement, |b, p| {
            b.iter(|| black_box(run_static(p, &x.stream)).hits)
        });
    }
    group.bench_function("replay_lru", |b| {
        b.iter(|| black_box(run_reactive(|| LruCache::new(cap), cap, &x.stream)).hits)
    });
    group.bench_function("replay_lfu", |b| {
        b.iter(|| black_box(run_reactive(|| LfuCache::new(cap), cap, &x.stream)).hits)
    });
    group.bench_function("replay_slru", |b| {
        b.iter(|| black_box(run_reactive(|| SlruCache::new(cap), cap, &x.stream)).hits)
    });
    let pinned = Placement::predictive("tags", x.countries, cap / 2, &x.predicted, &x.weights);
    group.bench_function("replay_hybrid", |b| {
        b.iter(|| black_box(run_hybrid(&pinned, cap - cap / 2, &x.stream)).hits)
    });
    let latency = LatencyModel::default_2011();
    let oracle = Placement::predictive("oracle", x.countries, cap, &x.truth, &x.weights);
    let origin = tagdist::geo::world().by_code("US").unwrap().id;
    group.bench_function("replay_with_latency", |b| {
        b.iter(|| {
            black_box(run_with_latency(
                tagdist::geo::world(),
                &latency,
                &oracle,
                &x.stream,
                origin,
            ))
            .local_hits
        })
    });
    group.bench_function("request_generation_100k", |b| {
        b.iter(|| black_box(RequestStream::generate(&x.truth, &x.weights, 100_000, 1)).len())
    });
    group.bench_function("diurnal_generation_100k", |b| {
        b.iter(|| {
            black_box(TimedRequestStream::generate(
                tagdist::geo::world(),
                &DiurnalModel::default_2011(),
                &x.truth,
                &x.weights,
                100_000,
                1,
            ))
            .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
