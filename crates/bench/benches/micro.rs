//! Micro-benchmarks of the primitives every experiment leans on:
//! distribution math, the Map-Chart codec, the heavy-tailed samplers
//! and the platform generator itself.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;
use tagdist::geo::{world, CountryVec, GeoDist, LatencyModel, PopularityVector, TrafficModel};
use tagdist::ytsim::{LogNormal, Platform, PlatformApi, WorldConfig, Zipf};

fn bench_geo(c: &mut Criterion) {
    let traffic = TrafficModel::reference(world());
    let a = traffic.distribution().clone();
    let b = traffic.perturbed(0.3, 1).distribution().clone();
    let mut group = c.benchmark_group("micro_geo");
    group.bench_function("js_divergence_60", |bch| {
        bch.iter(|| black_box(a.js_divergence(&b)).unwrap())
    });
    group.bench_function("entropy_60", |bch| b_entropy(bch, &a));
    group.bench_function("gini_60", |bch| bch.iter(|| black_box(a.gini())));
    let counts: CountryVec = (0..60).map(|i| (i * 37 % 101) as f64).collect();
    group.bench_function("normalize_60", |bch| {
        bch.iter(|| black_box(GeoDist::from_counts(&counts)).is_ok())
    });
    group.bench_function("quantize_60", |bch| {
        bch.iter(|| black_box(PopularityVector::quantize(&counts)).is_ok())
    });
    let mut rng = StdRng::seed_from_u64(4);
    group.bench_function("sample_country", |bch| {
        bch.iter(|| black_box(a.sample(&mut rng)))
    });
    group.finish();
}

fn b_entropy(bch: &mut criterion::Bencher<'_>, d: &GeoDist) {
    bch.iter(|| black_box(d.entropy()))
}

fn bench_latency(c: &mut Criterion) {
    let model = LatencyModel::default_2011();
    let us = world().by_code("US").unwrap().id;
    let all: Vec<_> = world().iter().map(|country| country.id).collect();
    let mut group = c.benchmark_group("micro_latency");
    group.bench_function("rtt_lookup", |b| {
        b.iter(|| black_box(model.rtt_ms(world(), us, all[37])))
    });
    group.bench_function("nearest_of_60", |b| {
        b.iter(|| black_box(model.nearest(world(), us, &all)))
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_sampling");
    let zipf = Zipf::new(100_000, 1.1);
    let mut rng = StdRng::seed_from_u64(1);
    group.bench_function("zipf_sample_100k_ranks", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)))
    });
    let ln = LogNormal::new(8.6, 2.2);
    group.bench_function("lognormal_views", |b| {
        b.iter(|| black_box(ln.sample_views(&mut rng)))
    });
    group.finish();
}

fn bench_platform(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_platform");
    group.sample_size(10);
    for videos in [1_000usize, 5_000] {
        group.bench_with_input(
            BenchmarkId::new("generate", videos),
            &videos,
            |b, &videos| {
                b.iter(|| {
                    let mut cfg = WorldConfig::tiny();
                    cfg.with_videos(videos);
                    black_box(Platform::generate(cfg)).catalogue_size()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_geo,
    bench_latency,
    bench_sampling,
    bench_platform
);
criterion_main!(benches);
