//! `bench-report` — machine-readable wall-clock *and allocation*
//! report for the columnar-storage pipeline, with an embedded
//! `tagdist-obs` metrics tree.
//!
//! Runs the three hot stages — `Reconstruction::compute` (Eq. 1),
//! `TagViewTable::aggregate` (Eq. 3) and the E6 leave-one-out
//! prediction evaluation — on the default ~120k-video corpus at 1, 2
//! and 4 worker threads, counting heap allocations per stage through a
//! counting global allocator. The pre-columnar PR 2 storage layout
//! (one boxed `CountryVec` per video / per tag row) is re-implemented
//! inline and measured single-threaded so the report can state the
//! allocation drop directly. Output identity is additionally
//! cross-checked at `TAGDIST_THREADS ∈ {1, 2, 8}`, and a final
//! single-threaded pass runs through the `*_obs` wrappers so the
//! report embeds the same span tree and deterministic counters
//! `tagdist report --metrics` emits (the `metrics` key) — the subtree
//! `cargo xtask bench-gate` regresses against `bench-baseline.json`.
//!
//! Since PR 7 the report also carries a `dataset_io` experiment: the
//! crawled corpus — and, in a full run, synthesized 1M- and 10M-video
//! corpora — is encoded to both on-disk formats (TSV and the `bin v1`
//! binary columnar format) and cold-loaded, measuring wall clock,
//! bytes per video, load allocations and peak live heap through the
//! counting allocator. Binary decode is measured twice: an owned
//! decode from memory and a zero-copy `Mmap` + `decode_borrowed` load
//! from disk. Both must stay O(sections): the run aborts if either
//! allocates more than a fixed constant, however large the corpus.
//!
//! Since PR 8 a `pipeline_columnar` experiment runs the whole
//! bin-to-report pipeline both ways — the record path
//! (decode → `to_dataset` → `filter`) against the columnar-native path
//! (`decode_borrowed` → `filter_columnar`) through reconstruction and
//! aggregation — asserting the outputs identical and reporting the
//! wall-clock and allocation gap.
//!
//! Since PR 9 an `incremental_ingest` experiment streams the corpus
//! through the delta-applied ingest engine in fixed-size batches —
//! publishing an epoch snapshot per batch — and races the amortized
//! per-batch cost (apply + publish) against a cold
//! filter → compute → aggregate rebuild, asserting the final snapshot
//! equals the cold state exactly. In a full run the race repeats on
//! the synthesized 1M-video corpus, where per-batch apply must beat
//! the cold rebuild.
//!
//! Since PR 10 a `serve_bench` experiment boots the in-process HTTP
//! server over a pinned epoch snapshot and replays a seeded
//! Zipf-shaped request plan against it (the same plan `tagdist
//! bench-serve` runs over a socket), reporting p50/p99 latency and
//! throughput with every response byte-compared against the offline
//! renderers. The instrumented pass additionally replays the fixed
//! smoke query set so the deterministic `serve.*` counters join the
//! gated metrics subtree.
//!
//! Writes `BENCH_PR10.json` at the repository root by default. Flags:
//! `--smoke` shrinks the corpus to the tiny test world, runs each
//! stage once and defaults the output to `bench-smoke.json` (the CI
//! wiring); a positional argument overrides the output path.
//!
//! Invoke as `cargo xtask bench-report [--smoke]` or directly:
//! `cargo run --release -p tagdist-bench --bin bench-report`.

#![allow(
    unsafe_code,
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tagdist::crawler::{crawl_parallel, crawl_parallel_obs, CrawlConfig};
use tagdist::dataset::{
    binfmt, filter, filter_columnar, tsv, write_binary, CleanDataset, ColumnarDataset,
    ColumnarRead, Dataset, DatasetBuilder, Mmap, RawPopularity, TagId,
};
use tagdist::geo::{CountryVec, GeoDist, TrafficModel};
use tagdist::obs::{MetricsReport, Recorder};
use tagdist::par::{available_threads, Pool, THREADS_ENV};
use tagdist::reconstruct::{
    EpochSnapshot, IngestEngine, Reconstruction, SnapshotCell, TagViewTable,
};
use tagdist::tags::PredictionEvaluation;
use tagdist::ytsim::{FaultProfile, FlakyPlatform, Platform, WorldConfig};
use tagdist_serve::loadgen::{self, LoadConfig, LoadReport};
use tagdist_serve::server::{ServeState, Server, ServerConfig};

/// Counting allocator: every `alloc`/`alloc_zeroed`/`realloc` bumps a
/// relaxed atomic before delegating to the system allocator, and the
/// live heap size is tracked byte-exactly (a `realloc` counts as
/// free-old + allocate-new) together with its high-water mark, so the
/// `dataset_io` experiment can report peak resident bytes per load.
/// Bench binary only — the library crates stay
/// `#![forbid(unsafe_code)]`.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

fn track_alloc(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        track_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        track_alloc(layout.size());
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Restarts the high-water mark from the current live size.
fn reset_peak() {
    PEAK_BYTES.store(live_bytes(), Ordering::Relaxed);
}

fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Thread counts the timing sweep covers.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Thread counts the output-identity cross-check covers.
const IDENTITY_THREADS: [usize; 3] = [1, 2, 8];

struct Sample {
    stage: &'static str,
    threads: usize,
    seconds: f64,
    allocations: u64,
}

/// Best-of-`runs` wall clock plus the allocation count of one run.
fn measured<R>(runs: usize, mut f: impl FnMut() -> R) -> (f64, u64, R) {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        drop(r);
    }
    let before = allocation_count();
    let result = f();
    (best, allocation_count() - before, result)
}

/// The binary decoder allocates one buffer per section plus a bounded
/// handful of header temporaries — never per video. The run aborts if
/// a load exceeds this ceiling, whatever the corpus size.
const MAX_BINARY_LOAD_ALLOCATIONS: u64 = 256;

/// Cost of one cold load: best-of-`runs` wall clock, then one extra
/// run observing the allocator (count, peak live delta, and the live
/// delta still held once the loaded structure is returned).
struct LoadCost {
    seconds: f64,
    allocations: u64,
    peak_bytes: u64,
    resident_bytes: u64,
}

fn measured_load<R>(runs: usize, mut f: impl FnMut() -> R) -> (LoadCost, R) {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        drop(r);
    }
    let live0 = live_bytes();
    reset_peak();
    let before = allocation_count();
    let result = f();
    let cost = LoadCost {
        seconds: best,
        allocations: allocation_count() - before,
        peak_bytes: peak_bytes().saturating_sub(live0),
        resident_bytes: live_bytes().saturating_sub(live0),
    };
    (cost, result)
}

/// One corpus measured through both on-disk formats, plus the
/// zero-copy mapped load of the binary one.
struct IoSample {
    corpus: &'static str,
    videos: usize,
    tsv_bytes: usize,
    bin_bytes: usize,
    tsv: LoadCost,
    bin: LoadCost,
    bin_mmap: LoadCost,
}

impl IoSample {
    fn speedup(&self) -> f64 {
        self.tsv.seconds / self.bin.seconds.max(f64::EPSILON)
    }
}

/// Encodes `dataset` to TSV and binary in memory, then cold-loads each
/// encoding: TSV through the row parser into a [`Dataset`], binary
/// twice — an owned decode from memory into a [`ColumnarDataset`], and
/// the zero-copy path (the file mapped with [`Mmap`], validated and
/// borrowed in place by `decode_borrowed`, never copied to the heap).
fn dataset_io(corpus: &'static str, dataset: &Dataset, runs: usize) -> IoSample {
    let mut tsv_bytes = Vec::new();
    tsv::write(dataset, &mut tsv_bytes).expect("TSV encode");
    let mut bin_bytes = Vec::new();
    write_binary(dataset, &mut bin_bytes).expect("binary encode");

    let (tsv_cost, parsed) =
        measured_load(runs, || tsv::read(&tsv_bytes[..]).expect("TSV decodes"));
    let (bin_cost, columnar) =
        measured_load(runs, || binfmt::decode(&bin_bytes).expect("binary decodes"));
    let path =
        std::env::temp_dir().join(format!("tagdist-bench-{}-{corpus}.bin", std::process::id()));
    std::fs::write(&path, &bin_bytes).expect("write bin corpus");
    let (mmap_cost, map) = measured_load(runs, || {
        let map = Mmap::open(&path).expect("map bin corpus");
        let view = binfmt::decode_borrowed(&map).expect("binary decodes");
        assert_eq!(view.len(), dataset.len());
        map
    });
    drop(map);
    std::fs::remove_file(&path).expect("remove bin corpus");
    assert_eq!(parsed.len(), dataset.len());
    assert_eq!(columnar.len(), dataset.len());
    for (what, cost) in [("load", &bin_cost), ("mmap load", &mmap_cost)] {
        assert!(
            cost.allocations <= MAX_BINARY_LOAD_ALLOCATIONS,
            "binary {what} of {} videos took {} allocations — the decoder \
             must stay O(sections)",
            dataset.len(),
            cost.allocations
        );
    }
    eprintln!(
        "dataset_io {corpus}: {} videos — TSV {} B, {:.3}s, {} allocs; \
         bin {} B, {:.3}s, {} allocs ({:.1}x faster); \
         mmap {:.3}s, {} allocs, {} heap B resident",
        dataset.len(),
        tsv_bytes.len(),
        tsv_cost.seconds,
        tsv_cost.allocations,
        bin_bytes.len(),
        bin_cost.seconds,
        bin_cost.allocations,
        tsv_cost.seconds / bin_cost.seconds.max(f64::EPSILON),
        mmap_cost.seconds,
        mmap_cost.allocations,
        mmap_cost.resident_bytes
    );
    IoSample {
        corpus,
        videos: dataset.len(),
        tsv_bytes: tsv_bytes.len(),
        bin_bytes: bin_bytes.len(),
        tsv: tsv_cost,
        bin: bin_cost,
        bin_mmap: mmap_cost,
    }
}

/// One variant of the end-to-end bin-to-report pipeline.
struct PipelineCost {
    seconds: f64,
    allocations: u64,
    peak_bytes: u64,
    filter_allocations: u64,
}

/// The `pipeline_columnar` experiment: the same `bin v1` image driven
/// through reconstruction and aggregation along both read paths.
///
/// * **record** — owned decode, `to_dataset` back into per-video
///   records, then the record `filter` (what every consumer did before
///   the columnar-native path existed);
/// * **columnar** — borrowed decode straight into `filter_columnar`,
///   no record materialization anywhere.
///
/// Returns both costs after asserting the two `CleanDataset`s, the
/// reconstructions and the tag tables are equal.
fn pipeline_columnar(
    corpus: &'static str,
    bin: &[u8],
    traffic: &GeoDist,
    runs: usize,
) -> (PipelineCost, PipelineCost) {
    let mut filter_record_allocs = 0;
    let mut run_record = || {
        let columnar = binfmt::decode(bin).expect("binary decodes");
        // The record path cannot filter without records: its filter
        // stage is materialize-then-filter, and is counted as such.
        let before = allocation_count();
        let dataset = columnar.to_dataset();
        let clean = filter(&dataset);
        filter_record_allocs = allocation_count() - before;
        let recon = Reconstruction::compute(&clean, traffic).expect("corpus carries views");
        let table = TagViewTable::aggregate(&clean, &recon);
        (clean, recon, table)
    };
    let mut filter_columnar_allocs = 0;
    let mut run_columnar = || {
        let view = binfmt::decode_borrowed(bin).expect("binary decodes");
        let before = allocation_count();
        let clean = filter_columnar(&view);
        filter_columnar_allocs = allocation_count() - before;
        let recon = Reconstruction::compute(&clean, traffic).expect("corpus carries views");
        let table = TagViewTable::aggregate(&clean, &recon);
        (clean, recon, table)
    };
    let (record_cost, record_out) = measured_load(runs, &mut run_record);
    let record = PipelineCost {
        seconds: record_cost.seconds,
        allocations: record_cost.allocations,
        peak_bytes: record_cost.peak_bytes,
        filter_allocations: filter_record_allocs,
    };
    let (columnar_cost, columnar_out) = measured_load(runs, &mut run_columnar);
    let columnar = PipelineCost {
        seconds: columnar_cost.seconds,
        allocations: columnar_cost.allocations,
        peak_bytes: columnar_cost.peak_bytes,
        filter_allocations: filter_columnar_allocs,
    };
    assert_eq!(
        record_out.0, columnar_out.0,
        "record and columnar filters disagree"
    );
    assert_eq!(
        record_out.1, columnar_out.1,
        "record and columnar reconstructions disagree"
    );
    assert_eq!(
        record_out.2, columnar_out.2,
        "record and columnar tag tables disagree"
    );
    eprintln!(
        "pipeline_columnar {corpus}: record {:.3}s / {} allocs (filter {}); \
         columnar {:.3}s / {} allocs (filter {}) — {:.2}x wall clock, \
         {:.1}x filter allocations",
        record.seconds,
        record.allocations,
        record.filter_allocations,
        columnar.seconds,
        columnar.allocations,
        columnar.filter_allocations,
        record.seconds / columnar.seconds.max(f64::EPSILON),
        record.filter_allocations as f64 / columnar.filter_allocations.max(1) as f64
    );
    (record, columnar)
}

/// A paper-scale corpus synthesized directly through the
/// [`DatasetBuilder`]: seeded, deterministic, with the §2 defect mix
/// (missing and corrupt popularity vectors) and escape-heavy tags, but
/// without paying for a million-video platform crawl.
fn synthetic_corpus(videos: usize, countries: usize) -> Dataset {
    let mut builder = DatasetBuilder::new(countries);
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    let mut tags: Vec<String> = Vec::with_capacity(6);
    for i in 0..videos {
        tags.clear();
        let tag_count = 1 + (next() % 7) as usize;
        for _ in 0..tag_count {
            let id = next() % 120_000;
            if id % 997 == 0 {
                // Escape-heavy names exercise the TSV escaper.
                tags.push(format!("genre,\\{id}\tlive"));
            } else {
                tags.push(format!("tag-{id}"));
            }
        }
        let popularity = match next() % 10 {
            0 => RawPopularity::Missing,
            1 => RawPopularity::Corrupt(vec![63, 1, 2]),
            _ => {
                let raw: Vec<u8> = (0..countries).map(|_| (next() % 62) as u8).collect();
                RawPopularity::decode(raw, countries)
            }
        };
        let refs: Vec<&str> = tags.iter().map(String::as_str).collect();
        builder.push_video_titled(
            &format!("v{i:07}"),
            &format!("Video {i}"),
            next() % 5_000_000,
            &refs,
            popularity,
        );
    }
    builder.build()
}

/// One `incremental_ingest` race: the corpus streamed through the
/// delta-applied engine in fixed-size batches vs a cold rebuild.
struct IngestCost {
    corpus: &'static str,
    videos: usize,
    batches: usize,
    apply_seconds: f64,
    publish_seconds: f64,
    amortized_batch_seconds: f64,
    cold_seconds: f64,
    speedup_amortized_vs_cold: f64,
    allocations: u64,
}

/// Streams `dataset` through an [`IngestEngine`] in `batches`
/// fixed-size batches, publishing an epoch snapshot after each — the
/// cost of keeping a queryable state fresh mid-crawl — then rebuilds
/// the same state cold (filter → compute → aggregate) and asserts the
/// two equal exactly. The headline number is the amortized per-batch
/// refresh (apply + publish, divided by batches) against the cold
/// rebuild a consumer would otherwise pay per refresh.
fn incremental_ingest(
    corpus: &'static str,
    dataset: &Dataset,
    traffic: &GeoDist,
    batches: usize,
) -> IngestCost {
    std::env::set_var(THREADS_ENV, "1");
    let before_allocs = allocation_count();
    let mut engine = IngestEngine::new(traffic.clone());
    let total = dataset.len();
    let size = total.div_ceil(batches).max(1);
    let mut apply_seconds = 0.0;
    let mut publish_seconds = 0.0;
    let mut from = 0;
    while from < total {
        let to = (from + size).min(total);
        let t = Instant::now();
        engine
            .apply_range(dataset, from, to)
            .expect("batch applies");
        apply_seconds += t.elapsed().as_secs_f64();
        let t = Instant::now();
        engine.publish().expect("epoch publishes");
        publish_seconds += t.elapsed().as_secs_f64();
        from = to;
    }
    let allocations = allocation_count() - before_allocs;
    let snapshot = engine.cell().load().expect("epochs published");

    let t = Instant::now();
    let clean = filter(dataset);
    let recon = Reconstruction::compute(&clean, traffic).expect("corpus carries views");
    let table = TagViewTable::aggregate(&clean, &recon);
    let cold_seconds = t.elapsed().as_secs_f64();
    std::env::remove_var(THREADS_ENV);

    // The rebuild oracle, enforced on the benchmark corpus itself.
    assert_eq!(snapshot.clean, clean, "{corpus}: clean state drifted");
    assert_eq!(snapshot.recon, recon, "{corpus}: reconstruction drifted");
    assert_eq!(snapshot.table, table, "{corpus}: aggregates drifted");

    let amortized = (apply_seconds + publish_seconds) / batches as f64;
    eprintln!(
        "incremental_ingest {corpus}: {batches} batches, amortized {amortized:.3}s/batch \
         vs cold {cold_seconds:.3}s — {:.2}x",
        cold_seconds / amortized.max(f64::EPSILON)
    );
    IngestCost {
        corpus,
        videos: total,
        batches,
        apply_seconds,
        publish_seconds,
        amortized_batch_seconds: amortized,
        cold_seconds,
        speedup_amortized_vs_cold: cold_seconds / amortized.max(f64::EPSILON),
        allocations,
    }
}

/// An in-process `tagdist serve` instance on an ephemeral port,
/// running its accept loop on a background thread with a dedicated
/// worker pool.
struct LiveServer {
    addr: String,
    stats: Arc<tagdist_serve::server::ServeStats>,
    stop: Arc<AtomicBool>,
    worker: std::thread::JoinHandle<Result<(), String>>,
}

/// Publishes `snapshot` as epoch 1 and boots the server over it.
fn boot_server(snapshot: Arc<EpochSnapshot>, traffic: TrafficModel, threads: usize) -> LiveServer {
    let cell = Arc::new(SnapshotCell::new());
    cell.store(snapshot);
    let server = Server::bind("127.0.0.1:0", cell, traffic, ServerConfig::default())
        .expect("server binds an ephemeral port");
    let addr = server.local_addr().expect("bound address").to_string();
    let stats = server.stats();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let worker = std::thread::spawn(move || {
        let pool = Pool::new(threads);
        server.run(&pool, &flag)
    });
    LiveServer {
        addr,
        stats,
        stop,
        worker,
    }
}

impl LiveServer {
    /// Signals shutdown and joins the accept loop, asserting it exits
    /// cleanly (the same contract the CI lane checks via SIGTERM).
    fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.worker
            .join()
            .expect("server thread joins")
            .expect("server accept loop exits cleanly");
    }
}

/// One `serve_bench` run: the Zipf load replayed against a live
/// in-process server.
struct ServeBenchCost {
    corpus: &'static str,
    videos: usize,
    concurrency: usize,
    server_threads: usize,
    report: LoadReport,
}

/// Boots the server over `dataset`'s epoch-1 snapshot and replays a
/// seeded Zipf-shaped plan of `requests` targets from `concurrency`
/// client workers — the in-process twin of `tagdist bench-serve`.
/// Every response is byte-compared against the offline renderers; any
/// transport or identity failure aborts the report.
fn serve_bench(
    corpus: &'static str,
    dataset: &Dataset,
    traffic: &GeoDist,
    requests: u64,
    concurrency: usize,
) -> ServeBenchCost {
    let model = TrafficModel::from_distribution(traffic.clone());
    let clean = filter(dataset);
    let videos = clean.len();
    let snapshot = Arc::new(EpochSnapshot::rebuild(1, clean, traffic).expect("snapshot rebuilds"));
    let state = ServeState::build(Arc::clone(&snapshot), traffic);
    let server_threads = available_threads().clamp(1, 4);
    let live = boot_server(snapshot, model.clone(), server_threads);
    let cfg = LoadConfig {
        addr: live.addr.clone(),
        requests,
        concurrency,
        seed: 42,
        read_timeout_ms: 30_000,
    };
    let report = loadgen::run(&cfg, &state, &model).expect("load run completes");
    live.shutdown();
    assert_eq!(
        report.failures, 0,
        "{corpus}: transport failures against localhost"
    );
    assert_eq!(
        report.identity_failures, 0,
        "{corpus}: served bytes != offline bytes"
    );
    eprintln!(
        "serve_bench {corpus}: {} requests @ {concurrency} clients over {server_threads} \
         server threads — p50 {} us, p99 {} us, {:.0} req/s",
        report.requests, report.p50_us, report.p99_us, report.throughput_rps
    );
    ServeBenchCost {
        corpus,
        videos,
        concurrency,
        server_threads,
        report,
    }
}

fn stage_outputs(
    clean: &CleanDataset,
    traffic: &GeoDist,
) -> (Reconstruction, TagViewTable, PredictionEvaluation) {
    let recon = Reconstruction::compute(clean, traffic).expect("corpus carries views");
    let table = TagViewTable::aggregate(clean, &recon);
    let eval = PredictionEvaluation::evaluate(clean, &recon, &table, traffic);
    (recon, table, eval)
}

/// The PR 2 reconstruction storage, verbatim: one boxed `CountryVec`
/// per video, three temporaries per inversion.
fn legacy_reconstruct(clean: &CleanDataset, traffic: &GeoDist) -> Vec<CountryVec> {
    clean
        .iter()
        .map(|v| {
            let intensities = v.popularity.as_country_vec();
            let weighted = intensities.hadamard(traffic.as_vec()).expect("same world");
            let mass = weighted.sum();
            weighted.scaled(v.total_views as f64 / mass)
        })
        .collect()
}

/// The PR 2 aggregation storage, verbatim: a full-vocabulary
/// `Vec<Option<CountryVec>>` with one boxed row per populated tag.
fn legacy_aggregate(
    clean: &CleanDataset,
    views: &[CountryVec],
) -> (Vec<Option<CountryVec>>, Vec<usize>) {
    let country_count = clean.country_count();
    let mut rows: Vec<Option<CountryVec>> = vec![None; clean.tags().len()];
    let mut counts = vec![0usize; clean.tags().len()];
    for (pos, video) in clean.iter().enumerate() {
        for &tag in video.tags {
            let row = rows[tag.index()].get_or_insert_with(|| CountryVec::zeros(country_count));
            row.accumulate(&views[pos]).expect("same world");
            counts[tag.index()] += 1;
        }
    }
    (rows, counts)
}

/// One instrumented single-threaded pass through the three stages,
/// recorded through `tagdist-obs`. Pinned at one worker so the
/// allocation counters (`alloc.*`) are deterministic — this is the
/// subtree `cargo xtask bench-gate` compares against the checked-in
/// baseline.
///
/// Also runs a fault-injected crawl (seeded `flaky` profile) through
/// the instrumented driver so the retry/breaker/throttle counters
/// (`crawl.retries`, `crawl.breaker_trips`, `crawl.*_wait_ms`, …) are
/// part of the gated subtree. The crawl sits outside every alloc
/// window — its counters are exact functions of the fault pattern,
/// not of allocator behaviour.
fn instrumented_pass(
    platform: &Platform,
    raw: &Dataset,
    clean: &CleanDataset,
    traffic: &GeoDist,
) -> MetricsReport {
    std::env::set_var(THREADS_ENV, "1");
    let obs = Recorder::new();
    {
        let root = obs.span("bench");
        // The columnar codec, gated end to end: encode allocations,
        // decode allocations (O(sections) by construction) and the
        // `dataset.*` section-size gauges are all exact functions of
        // the seeded corpus.
        let columnar = ColumnarDataset::from_dataset(raw).expect("corpus fits bin v1 limits");
        columnar.record_gauges(&obs);
        let before = allocation_count();
        let mut bin = Vec::new();
        write_binary(raw, &mut bin).expect("binary encode");
        obs.add("alloc.dataset_bin_encode", allocation_count() - before);
        let before = allocation_count();
        let decoded = binfmt::decode(&bin).expect("binary decode");
        obs.add("alloc.dataset_bin_decode", allocation_count() - before);
        assert_eq!(decoded.len(), raw.len());
        // The two filter paths, gated against each other: the record
        // path pays record materialization, the columnar path filters
        // the borrowed sections in place. Outputs must agree exactly.
        let before = allocation_count();
        let clean_record = filter(&decoded.to_dataset());
        obs.add("alloc.filter_record", allocation_count() - before);
        let view = binfmt::decode_borrowed(&bin).expect("binary decode");
        let before = allocation_count();
        let clean_columnar = filter_columnar(&view);
        obs.add("alloc.filter_columnar", allocation_count() - before);
        assert_eq!(clean_record, clean_columnar);
        assert_eq!(&clean_record, clean);
        // The zero-copy load, gated end to end: a mapped file decodes
        // borrowed with O(sections) heap traffic, and the mapped size
        // is an exact function of the seeded corpus.
        let path =
            std::env::temp_dir().join(format!("tagdist-bench-{}-obs.bin", std::process::id()));
        std::fs::write(&path, &bin).expect("write bin corpus");
        let before = allocation_count();
        let map = Mmap::open(&path).expect("map bin corpus");
        let mapped = binfmt::decode_borrowed(&map).expect("binary decode");
        obs.add("alloc.dataset_mmap_load", allocation_count() - before);
        obs.add("dataset.mmap_bytes", map.len() as u64);
        obs.add("dataset.mmap_videos", mapped.len() as u64);
        drop(map);
        std::fs::remove_file(&path).expect("remove bin corpus");
        let mut fault = FaultProfile::flaky();
        fault.with_seed(0xBE7C_AA17);
        let flaky = FlakyPlatform::new(platform, fault);
        let faulty = crawl_parallel_obs(&flaky, &CrawlConfig::default(), &root);
        assert_eq!(
            faulty.stats.exhausted_retries, 0,
            "the flaky profile must stay within the retry budget"
        );
        let before = allocation_count();
        let recon =
            Reconstruction::compute_obs(clean, traffic, &root).expect("corpus carries views");
        obs.add("alloc.reconstruct_compute", allocation_count() - before);
        let before = allocation_count();
        let table = TagViewTable::aggregate_obs(clean, &recon, &root);
        obs.add("alloc.tag_aggregate", allocation_count() - before);
        let before = allocation_count();
        let _eval = PredictionEvaluation::evaluate_obs(clean, &recon, &table, traffic, &root);
        obs.add("alloc.e6_evaluate", allocation_count() - before);
        // The incremental ingest engine, gated end to end: stream the
        // raw corpus in three batches and record the deterministic
        // `ingest.*` counters (batches, rows touched, epoch flips are
        // exact functions of the seeded corpus). The final epoch must
        // replay the cold filter exactly.
        let before = allocation_count();
        let mut engine = IngestEngine::new(traffic.clone());
        let step = raw.len().div_ceil(3).max(1);
        let mut from = 0;
        while from < raw.len() {
            let to = (from + step).min(raw.len());
            engine.apply_range(raw, from, to).expect("batch applies");
            engine.publish().expect("epoch publishes");
            from = to;
        }
        engine.record_obs(&root);
        obs.add("alloc.incremental_ingest", allocation_count() - before);
        let streamed = engine.cell().load().expect("epochs published");
        assert_eq!(
            &streamed.clean, clean,
            "streamed clean state must equal the cold filter"
        );
        assert_eq!(
            streamed.table, table,
            "streamed aggregates must equal the cold table"
        );
        // The serve layer, gated end to end: an in-process server over
        // the epoch snapshot answers the fixed smoke query set, every
        // response byte-compared against the offline renderers. The
        // resulting `serve.*` counters are exact functions of the
        // seeded corpus — six `Connection: close` requests, no Date
        // header, so connections, requests, pins and bytes written
        // never vary across runs or hosts.
        let model = TrafficModel::from_distribution(traffic.clone());
        let snapshot = Arc::new(
            EpochSnapshot::rebuild(1, clean_columnar, traffic).expect("snapshot rebuilds"),
        );
        let state = ServeState::build(Arc::clone(&snapshot), traffic);
        let live = boot_server(snapshot, model.clone(), 1);
        let cfg = LoadConfig {
            addr: live.addr.clone(),
            ..LoadConfig::default()
        };
        let stats = Arc::clone(&live.stats);
        let smoke = loadgen::run_smoke(&cfg, &state, &model, None).expect("smoke replay completes");
        live.shutdown();
        assert_eq!(smoke.identity_failures, 0, "served bytes != offline bytes");
        stats.record_obs(&root);
    }
    std::env::remove_var(THREADS_ENV);
    obs.finish()
}

fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// True when the working tree differs from `git_commit()` — the
/// committed hash alone would misattribute numbers measured on
/// uncommitted code.
fn git_dirty() -> bool {
    std::process::Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .is_none_or(|out| !out.stdout.is_empty())
}

/// `combined_seconds.threads_1` from the committed PR 2 baseline.
fn pr2_combined_threads_1() -> Option<f64> {
    let text = std::fs::read_to_string("BENCH_PR2.json").ok()?;
    let line = text.lines().find(|l| l.contains("\"combined_seconds\""))?;
    let rest = &line[line.find("\"threads_1\":")? + "\"threads_1\":".len()..];
    let number: String = rest
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    number.parse().ok()
}

fn main() {
    let mut smoke = false;
    let mut out_arg: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_arg = Some(arg);
        }
    }
    let out_path = out_arg.unwrap_or_else(|| {
        if smoke {
            "bench-smoke.json".to_owned()
        } else {
            "BENCH_PR10.json".to_owned()
        }
    });
    let runs = if smoke { 1 } else { 3 };

    // Shared setup (not part of any measurement): the default-scale
    // world — or the tiny test world under --smoke — crawled and
    // filtered exactly as `Study::try_run` does.
    let world = if smoke {
        WorldConfig::tiny()
    } else {
        WorldConfig::default()
    };
    let videos_config = world.videos;
    let world_seed = world.seed;
    eprintln!("generating {videos_config}-video world + crawl (one-time setup)...");
    let platform = Platform::generate(world);
    let outcome = crawl_parallel(&platform, &CrawlConfig::default());
    let clean = filter(&outcome.dataset);
    let traffic = platform.true_traffic();
    eprintln!(
        "corpus ready: {} crawled, {} filtered, {} tags",
        outcome.stats.fetched,
        clean.len(),
        clean.tags().len()
    );

    let mut samples: Vec<Sample> = Vec::new();
    for threads in THREAD_COUNTS {
        std::env::set_var(THREADS_ENV, threads.to_string());
        assert_eq!(Pool::from_env().threads(), threads);

        let (secs, allocs, recon) = measured(runs, || {
            Reconstruction::compute(&clean, traffic).expect("corpus carries views")
        });
        eprintln!("reconstruction_compute @ {threads} threads: {secs:.3}s, {allocs} allocations");
        samples.push(Sample {
            stage: "reconstruction_compute",
            threads,
            seconds: secs,
            allocations: allocs,
        });

        let (secs, allocs, table) = measured(runs, || TagViewTable::aggregate(&clean, &recon));
        eprintln!("tag_aggregate          @ {threads} threads: {secs:.3}s, {allocs} allocations");
        samples.push(Sample {
            stage: "tag_aggregate",
            threads,
            seconds: secs,
            allocations: allocs,
        });

        let (secs, allocs, _eval) = measured(runs, || {
            PredictionEvaluation::evaluate(&clean, &recon, &table, traffic)
        });
        eprintln!("e6_evaluate            @ {threads} threads: {secs:.3}s, {allocs} allocations");
        samples.push(Sample {
            stage: "e6_evaluate",
            threads,
            seconds: secs,
            allocations: allocs,
        });
    }

    // The determinism contract, enforced on the real corpus: every
    // stage's output — and the rendered E6 report bytes — must be
    // identical at every thread count, including counts above the
    // timing sweep.
    let mut identical = true;
    let mut reference: Option<(Reconstruction, TagViewTable, PredictionEvaluation, String)> = None;
    for threads in IDENTITY_THREADS {
        std::env::set_var(THREADS_ENV, threads.to_string());
        let (r, t, e) = stage_outputs(&clean, traffic);
        let rendered = e.to_string();
        match &reference {
            None => reference = Some((r, t, e, rendered)),
            Some((r0, t0, e0, s0)) => {
                identical &= *r0 == r && *t0 == t && *e0 == e && *s0 == rendered;
            }
        }
    }
    assert!(identical, "outputs drifted across thread counts");

    // The pre-columnar layouts, single-threaded, for the allocation
    // comparison the PR is about.
    std::env::set_var(THREADS_ENV, "1");
    let (legacy_recon_secs, legacy_recon_allocs, legacy_views) =
        measured(runs, || legacy_reconstruct(&clean, traffic));
    eprintln!(
        "legacy reconstruction  @ 1 threads: {legacy_recon_secs:.3}s, \
         {legacy_recon_allocs} allocations"
    );
    let (legacy_agg_secs, legacy_agg_allocs, (legacy_rows, _)) =
        measured(runs, || legacy_aggregate(&clean, &legacy_views));
    eprintln!(
        "legacy aggregation     @ 1 threads: {legacy_agg_secs:.3}s, \
         {legacy_agg_allocs} allocations"
    );
    std::env::remove_var(THREADS_ENV);

    // The whole point of the storage swap: same bits, fewer boxes.
    // Both stages reproduce the boxed layouts' outputs exactly.
    let (recon0, table0, ..) = reference.as_ref().expect("identity sweep ran");
    for (pos, row) in legacy_views.iter().enumerate() {
        assert_eq!(
            recon0.views(pos),
            Some(row.as_slice()),
            "columnar reconstruction drifted from the boxed layout at video {pos}"
        );
    }
    for (index, row) in legacy_rows.iter().enumerate() {
        assert_eq!(
            table0.views(TagId::from_index(index)),
            row.as_ref().map(CountryVec::as_slice),
            "columnar aggregate drifted from the boxed layout at tag {index}"
        );
    }
    eprintln!("columnar outputs match the boxed layouts bit for bit");

    // The on-disk formats, measured end to end on the crawled corpus
    // and — in a full run — on synthesized paper-scale corpora, with
    // the bin-to-report pipeline raced record vs columnar on the
    // largest corpus that still fits a multi-run sweep.
    let mut io_samples = vec![dataset_io("crawl", &outcome.dataset, runs)];
    let (pipeline_corpus, pipeline_videos, pipeline_record, pipeline_columnar_cost);
    if smoke {
        let mut bin = Vec::new();
        write_binary(&outcome.dataset, &mut bin).expect("binary encode");
        let (r, c) = pipeline_columnar("crawl", &bin, traffic, runs);
        (pipeline_corpus, pipeline_videos) = ("crawl", outcome.dataset.len());
        (pipeline_record, pipeline_columnar_cost) = (r, c);
    } else {
        eprintln!("synthesizing 1M-video corpus (one-time setup)...");
        let synth = synthetic_corpus(1_000_000, clean.country_count());
        io_samples.push(dataset_io("synthetic_1m", &synth, 2));
        let mut bin = Vec::new();
        write_binary(&synth, &mut bin).expect("binary encode");
        drop(synth);
        let (r, c) = pipeline_columnar("synthetic_1m", &bin, traffic, 2);
        (pipeline_corpus, pipeline_videos) = ("synthetic_1m", 1_000_000);
        (pipeline_record, pipeline_columnar_cost) = (r, c);
        drop(bin);
        eprintln!("synthesizing 10M-video corpus (one-time setup)...");
        let synth = synthetic_corpus(10_000_000, clean.country_count());
        io_samples.push(dataset_io("synthetic_10m", &synth, 1));
    }

    // The PR 9 race: delta-applied streaming vs cold rebuild, on the
    // crawled corpus and — in a full run — the 1M-video synthesis.
    let mut ingest_costs = vec![incremental_ingest("crawl", &outcome.dataset, traffic, 8)];
    if !smoke {
        eprintln!("synthesizing 1M-video corpus for incremental ingest (one-time setup)...");
        let synth = synthetic_corpus(1_000_000, clean.country_count());
        ingest_costs.push(incremental_ingest("synthetic_1m", &synth, traffic, 8));
    }

    // The PR 10 serve layer: a live in-process server raced under the
    // seeded Zipf load — the crawled corpus in a smoke run, a
    // synthesized 200k-video corpus under a deeper plan in a full run.
    let serve_cost = if smoke {
        serve_bench("crawl", &outcome.dataset, traffic, 2_000, 4)
    } else {
        eprintln!("synthesizing 200k-video corpus for serve bench (one-time setup)...");
        let synth = synthetic_corpus(200_000, clean.country_count());
        serve_bench("synthetic_200k", &synth, traffic, 1_000_000, 8)
    };

    // The observability pass: same stages, recorded spans + counters.
    let metrics = instrumented_pass(&platform, &outcome.dataset, &clean, traffic);
    eprintln!(
        "instrumented pass: {} spans, {} deterministic counters",
        metrics.spans.len(),
        metrics.counters.len()
    );

    let find = |stage: &str, threads: usize| -> &Sample {
        samples
            .iter()
            .find(|s| s.stage == stage && s.threads == threads)
            .expect("stage was measured")
    };
    let total = |threads: usize| -> f64 {
        samples
            .iter()
            .filter(|s| s.threads == threads)
            .map(|s| s.seconds)
            .sum()
    };
    let drop_ratio = |legacy: u64, new: u64| legacy as f64 / new.max(1) as f64;
    let recon_drop = drop_ratio(
        legacy_recon_allocs,
        find("reconstruction_compute", 1).allocations,
    );
    let agg_drop = drop_ratio(legacy_agg_allocs, find("tag_aggregate", 1).allocations);
    eprintln!("allocation drop: reconstruction {recon_drop:.1}x, aggregation {agg_drop:.1}x");

    let baseline_pr2 = if smoke {
        None
    } else {
        pr2_combined_threads_1()
    };
    let speedup_vs_pr2 = baseline_pr2.map(|b| b / total(1).max(f64::EPSILON));
    if let Some(s) = speedup_vs_pr2 {
        eprintln!(
            "single-thread combined: {:.3}s vs PR 2 baseline {:.3}s — {s:.2}x",
            total(1),
            baseline_pr2.unwrap_or(0.0)
        );
    }
    let host = available_threads();

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 10,");
    let _ = writeln!(json, "  \"smoke\": {smoke},");
    let _ = writeln!(json, "  \"runs_per_stage\": {runs},");
    let _ = writeln!(json, "  \"host_available_threads\": {host},");
    let _ = writeln!(json, "  \"provenance\": {{");
    let _ = writeln!(json, "    \"git_commit\": \"{}\",", git_commit());
    let _ = writeln!(json, "    \"git_worktree_dirty\": {},", git_dirty());
    let _ = writeln!(json, "    \"world_seed\": {world_seed},");
    let _ = writeln!(json, "    \"videos_configured\": {videos_config},");
    let _ = writeln!(json, "    \"allocation_counter\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"corpus\": {{");
    let _ = writeln!(json, "    \"videos_configured\": {videos_config},");
    let _ = writeln!(json, "    \"videos_crawled\": {},", outcome.stats.fetched);
    let _ = writeln!(json, "    \"videos_filtered\": {},", clean.len());
    let _ = writeln!(json, "    \"tags\": {},", clean.tags().len());
    let _ = writeln!(json, "    \"countries\": {}", clean.country_count());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"experiments\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, \
             \"allocations\": {} }}{comma}",
            s.stage, s.threads, s.seconds, s.allocations
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"legacy_single_thread\": [");
    let _ = writeln!(
        json,
        "    {{ \"name\": \"reconstruction_compute\", \"seconds\": {legacy_recon_secs:.6}, \
         \"allocations\": {legacy_recon_allocs} }},"
    );
    let _ = writeln!(
        json,
        "    {{ \"name\": \"tag_aggregate\", \"seconds\": {legacy_agg_secs:.6}, \
         \"allocations\": {legacy_agg_allocs} }}"
    );
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"allocation_drop\": {{ \"reconstruction_compute\": {recon_drop:.1}, \
         \"tag_aggregate\": {agg_drop:.1} }},"
    );
    let _ = writeln!(json, "  \"dataset_io\": [");
    for (i, s) in io_samples.iter().enumerate() {
        let comma = if i + 1 == io_samples.len() { "" } else { "," };
        let per = |bytes: usize| bytes as f64 / s.videos.max(1) as f64;
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"corpus\": \"{}\",", s.corpus);
        let _ = writeln!(json, "      \"videos\": {},", s.videos);
        let _ = writeln!(
            json,
            "      \"tsv\": {{ \"bytes\": {}, \"bytes_per_video\": {:.2}, \
             \"cold_load_seconds\": {:.6}, \"load_allocations\": {}, \
             \"peak_load_bytes\": {}, \"resident_bytes\": {} }},",
            s.tsv_bytes,
            per(s.tsv_bytes),
            s.tsv.seconds,
            s.tsv.allocations,
            s.tsv.peak_bytes,
            s.tsv.resident_bytes
        );
        let _ = writeln!(
            json,
            "      \"bin\": {{ \"bytes\": {}, \"bytes_per_video\": {:.2}, \
             \"cold_load_seconds\": {:.6}, \"load_allocations\": {}, \
             \"peak_load_bytes\": {}, \"resident_bytes\": {} }},",
            s.bin_bytes,
            per(s.bin_bytes),
            s.bin.seconds,
            s.bin.allocations,
            s.bin.peak_bytes,
            s.bin.resident_bytes
        );
        let _ = writeln!(
            json,
            "      \"bin_mmap\": {{ \"cold_load_seconds\": {:.6}, \
             \"load_allocations\": {}, \"peak_load_bytes\": {}, \
             \"resident_bytes\": {} }},",
            s.bin_mmap.seconds,
            s.bin_mmap.allocations,
            s.bin_mmap.peak_bytes,
            s.bin_mmap.resident_bytes
        );
        let _ = writeln!(
            json,
            "      \"bin_cold_load_speedup_vs_tsv\": {:.2}",
            s.speedup()
        );
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"pipeline_columnar\": {{");
    let _ = writeln!(json, "    \"corpus\": \"{pipeline_corpus}\",");
    let _ = writeln!(json, "    \"videos\": {pipeline_videos},");
    for (key, cost, comma) in [
        ("record", &pipeline_record, ","),
        ("columnar", &pipeline_columnar_cost, ","),
    ] {
        let _ = writeln!(
            json,
            "    \"{key}\": {{ \"seconds\": {:.6}, \"allocations\": {}, \
             \"peak_bytes\": {}, \"filter_allocations\": {} }}{comma}",
            cost.seconds, cost.allocations, cost.peak_bytes, cost.filter_allocations
        );
    }
    let _ = writeln!(
        json,
        "    \"wall_clock_speedup\": {:.3},",
        pipeline_record.seconds / pipeline_columnar_cost.seconds.max(f64::EPSILON)
    );
    let _ = writeln!(
        json,
        "    \"filter_allocation_drop\": {:.1},",
        pipeline_record.filter_allocations as f64
            / pipeline_columnar_cost.filter_allocations.max(1) as f64
    );
    let _ = writeln!(json, "    \"outputs_identical\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"incremental_ingest\": [");
    for (i, c) in ingest_costs.iter().enumerate() {
        let comma = if i + 1 == ingest_costs.len() { "" } else { "," };
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"corpus\": \"{}\",", c.corpus);
        let _ = writeln!(json, "      \"videos\": {},", c.videos);
        let _ = writeln!(json, "      \"batches\": {},", c.batches);
        let _ = writeln!(json, "      \"apply_seconds\": {:.6},", c.apply_seconds);
        let _ = writeln!(json, "      \"publish_seconds\": {:.6},", c.publish_seconds);
        let _ = writeln!(
            json,
            "      \"amortized_batch_seconds\": {:.6},",
            c.amortized_batch_seconds
        );
        let _ = writeln!(
            json,
            "      \"cold_rebuild_seconds\": {:.6},",
            c.cold_seconds
        );
        let _ = writeln!(
            json,
            "      \"amortized_speedup_vs_cold\": {:.3},",
            c.speedup_amortized_vs_cold
        );
        let _ = writeln!(json, "      \"allocations\": {},", c.allocations);
        let _ = writeln!(json, "      \"outputs_identical\": true");
        let _ = writeln!(json, "    }}{comma}");
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"serve_bench\": {{");
    let _ = writeln!(json, "    \"corpus\": \"{}\",", serve_cost.corpus);
    let _ = writeln!(json, "    \"videos\": {},", serve_cost.videos);
    let _ = writeln!(json, "    \"concurrency\": {},", serve_cost.concurrency);
    let _ = writeln!(
        json,
        "    \"server_threads\": {},",
        serve_cost.server_threads
    );
    let _ = writeln!(json, "    \"load\": {},", serve_cost.report.to_json());
    let _ = writeln!(json, "    \"outputs_identical\": true");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(
        json,
        "  \"combined_seconds\": {{ \"threads_1\": {:.6}, \"threads_2\": {:.6}, \
         \"threads_4\": {:.6} }},",
        total(1),
        total(2),
        total(4)
    );
    match (baseline_pr2, speedup_vs_pr2) {
        (Some(b), Some(s)) => {
            let _ = writeln!(
                json,
                "  \"baseline_pr2\": {{ \"combined_seconds_threads_1\": {b:.6} }},"
            );
            let _ = writeln!(json, "  \"speedup_vs_pr2_single_thread\": {s:.3},");
        }
        _ => {
            let _ = writeln!(json, "  \"baseline_pr2\": null,");
            let _ = writeln!(json, "  \"speedup_vs_pr2_single_thread\": null,");
        }
    }
    let _ = writeln!(json, "  \"outputs_identical_across_threads\": {identical},");
    let _ = writeln!(json, "  \"metrics\": {}", metrics.to_json());
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, json).expect("write benchmark report");
    eprintln!("wrote {out_path}");
}
