//! `bench-report` — machine-readable wall-clock baseline for the PR 2
//! parallelism work.
//!
//! Runs the three hot stages the worker pool accelerates —
//! `Reconstruction::compute` (Eq. 1), `TagViewTable::aggregate`
//! (Eq. 3) and the E6 leave-one-out prediction evaluation — on the
//! default ~120k-video corpus at 1 and 4 worker threads, cross-checks
//! that every stage's output is identical across thread counts, and
//! writes `BENCH_PR2.json` at the repository root (or the path given
//! as the first argument).
//!
//! Invoke as `cargo xtask bench-report` or directly:
//! `cargo run --release -p tagdist-bench --bin bench-report`.

#![allow(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::float_cmp,
    clippy::missing_panics_doc,
    missing_docs
)]

use std::fmt::Write as _;
use std::time::Instant;

use tagdist::crawler::{crawl_parallel, CrawlConfig};
use tagdist::dataset::{filter, CleanDataset};
use tagdist::geo::GeoDist;
use tagdist::par::{available_threads, Pool, THREADS_ENV};
use tagdist::reconstruct::{Reconstruction, TagViewTable};
use tagdist::tags::PredictionEvaluation;
use tagdist::ytsim::{Platform, WorldConfig};

/// Timed runs per (stage, thread-count) pair; the minimum is recorded.
const RUNS: usize = 3;

/// Thread counts the report sweeps.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Sample {
    stage: &'static str,
    threads: usize,
    seconds: f64,
}

fn timed<R>(runs: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.expect("at least one run"))
}

fn stage_outputs(
    clean: &CleanDataset,
    traffic: &GeoDist,
) -> (Reconstruction, TagViewTable, PredictionEvaluation) {
    let recon = Reconstruction::compute(clean, traffic).expect("corpus carries views");
    let table = TagViewTable::aggregate(clean, &recon);
    let eval = PredictionEvaluation::evaluate(clean, &recon, &table, traffic);
    (recon, table, eval)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR2.json".to_owned());

    // Shared setup (not part of any measurement): the default-scale
    // world, crawled and filtered exactly as `Study::try_run` does.
    let world = WorldConfig::default();
    let videos_config = world.videos;
    eprintln!("generating {videos_config}-video world + crawl (one-time setup)...");
    let platform = Platform::generate(world);
    let outcome = crawl_parallel(&platform, &CrawlConfig::default());
    let clean = filter(&outcome.dataset);
    let traffic = platform.true_traffic();
    eprintln!(
        "corpus ready: {} crawled, {} filtered, {} tags",
        outcome.stats.fetched,
        clean.len(),
        clean.tags().len()
    );

    let mut samples: Vec<Sample> = Vec::new();
    let mut reference: Option<(Reconstruction, TagViewTable, PredictionEvaluation)> = None;
    let mut identical = true;

    for threads in THREAD_COUNTS {
        std::env::set_var(THREADS_ENV, threads.to_string());
        assert_eq!(Pool::from_env().threads(), threads);

        let (secs, recon) = timed(RUNS, || {
            Reconstruction::compute(&clean, traffic).expect("corpus carries views")
        });
        samples.push(Sample {
            stage: "reconstruction_compute",
            threads,
            seconds: secs,
        });
        eprintln!("reconstruction_compute @ {threads} threads: {secs:.3}s");

        let (secs, table) = timed(RUNS, || TagViewTable::aggregate(&clean, &recon));
        samples.push(Sample {
            stage: "tag_aggregate",
            threads,
            seconds: secs,
        });
        eprintln!("tag_aggregate          @ {threads} threads: {secs:.3}s");

        let (secs, _eval) = timed(RUNS, || {
            PredictionEvaluation::evaluate(&clean, &recon, &table, traffic)
        });
        samples.push(Sample {
            stage: "e6_evaluate",
            threads,
            seconds: secs,
        });
        eprintln!("e6_evaluate            @ {threads} threads: {secs:.3}s");

        // The determinism contract, enforced on the real corpus: every
        // stage's output must be identical at every thread count.
        match &reference {
            None => reference = Some(stage_outputs(&clean, traffic)),
            Some((r0, t0, e0)) => {
                let (r, t, e) = stage_outputs(&clean, traffic);
                identical &= *r0 == r && *t0 == t && *e0 == e;
            }
        }
    }
    std::env::remove_var(THREADS_ENV);
    assert!(identical, "outputs drifted across thread counts");

    let total = |threads: usize| -> f64 {
        samples
            .iter()
            .filter(|s| s.threads == threads)
            .map(|s| s.seconds)
            .sum()
    };
    let combined_speedup = total(1) / total(4).max(f64::EPSILON);
    let host = available_threads();
    eprintln!("combined speedup at 4 threads: {combined_speedup:.2}x (host has {host} hardware thread(s))");

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"pr\": 2,");
    let _ = writeln!(json, "  \"runs_per_stage\": {RUNS},");
    let _ = writeln!(json, "  \"host_available_threads\": {host},");
    let _ = writeln!(json, "  \"corpus\": {{");
    let _ = writeln!(json, "    \"videos_configured\": {videos_config},");
    let _ = writeln!(json, "    \"videos_crawled\": {},", outcome.stats.fetched);
    let _ = writeln!(json, "    \"videos_filtered\": {},", clean.len());
    let _ = writeln!(json, "    \"tags\": {},", clean.tags().len());
    let _ = writeln!(json, "    \"countries\": {}", clean.country_count());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"experiments\": [");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{ \"name\": \"{}\", \"threads\": {}, \"seconds\": {:.6} }}{comma}",
            s.stage, s.threads, s.seconds
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"combined_seconds\": {{ \"threads_1\": {:.6}, \"threads_2\": {:.6}, \"threads_4\": {:.6} }},",
        total(1),
        total(2),
        total(4)
    );
    let _ = writeln!(
        json,
        "  \"combined_speedup_4_threads\": {combined_speedup:.3},"
    );
    let _ = writeln!(json, "  \"outputs_identical_across_threads\": {identical}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, json).expect("write benchmark report");
    eprintln!("wrote {out_path}");
}
