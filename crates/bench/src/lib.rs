//! Shared setup for the Criterion benches.
//!
//! Each `benches/e*.rs` target regenerates one of the paper's
//! tables/figures (printing the rows once) and then measures the
//! computational stage behind it. The study is built once per bench
//! binary and shared.

#![cfg_attr(
    test,
    allow(
        clippy::unwrap_used,
        clippy::expect_used,
        clippy::panic,
        clippy::float_cmp,
        clippy::missing_panics_doc,
        missing_docs
    )
)]

use std::sync::OnceLock;

use tagdist::{Study, StudyConfig};

/// The world/crawl scale benches run at (20k videos — large enough
/// for stable shapes, small enough for tight iteration).
pub fn bench_config() -> StudyConfig {
    StudyConfig::small()
}

/// Builds (once) and returns the shared study.
pub fn bench_study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(|| Study::run(bench_config()))
}
